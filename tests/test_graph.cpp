// Tests for the graph substrate: netlist -> undirected gate graph, h-hop
// enclosing subgraphs, DRNL labeling, and balanced link sampling.
#include <gtest/gtest.h>

#include <set>

#include "attacks/key_trace.h"
#include "circuitgen/generator.h"
#include "graph/circuit_graph.h"
#include "graph/sampling.h"
#include "graph/subgraph.h"
#include "locking/mux_lock.h"
#include "netlist/bench_io.h"

namespace muxlink::graph {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::parse_bench;

constexpr const char* kChain = R"(
INPUT(a)
INPUT(b)
OUTPUT(g4)
g1 = AND(a, b)
g2 = NOT(g1)
g3 = OR(g2, g1)
g4 = XOR(g3, g2)
)";

// --- graph construction ---------------------------------------------------------

TEST(CircuitGraph, ExcludesPrimaryInputs) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl);
  EXPECT_EQ(g.num_nodes(), 4u);  // g1..g4
  EXPECT_EQ(g.node_of(nl.find("a")), kNoNode);
  EXPECT_NE(g.node_of(nl.find("g1")), kNoNode);
}

TEST(CircuitGraph, EdgesFollowWires) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto n1 = static_cast<NodeId>(g.node_of(nl.find("g1")));
  const auto n2 = static_cast<NodeId>(g.node_of(nl.find("g2")));
  const auto n3 = static_cast<NodeId>(g.node_of(nl.find("g3")));
  const auto n4 = static_cast<NodeId>(g.node_of(nl.find("g4")));
  EXPECT_TRUE(g.has_edge(n1, n2));
  EXPECT_TRUE(g.has_edge(n1, n3));
  EXPECT_TRUE(g.has_edge(n2, n3));
  EXPECT_TRUE(g.has_edge(n3, n4));
  EXPECT_TRUE(g.has_edge(n2, n4));
  EXPECT_FALSE(g.has_edge(n1, n4));
  EXPECT_EQ(g.num_edges(), 5u);
}

TEST(CircuitGraph, UndirectedAndDeduplicated) {
  // A gate feeding two ports of the same sink yields one edge.
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
x = NOT(a)
y = AND(x, x)
)");
  const CircuitGraph g = build_circuit_graph(nl);
  EXPECT_EQ(g.num_edges(), 1u);
  const auto nx = static_cast<NodeId>(g.node_of(nl.find("x")));
  const auto ny = static_cast<NodeId>(g.node_of(nl.find("y")));
  EXPECT_TRUE(g.has_edge(nx, ny));
  EXPECT_TRUE(g.has_edge(ny, nx));
}

TEST(CircuitGraph, ExclusionRemovesNodeAndItsEdges) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl, std::vector{nl.find("g3")});
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.node_of(nl.find("g3")), kNoNode);
  // g3's edges are gone; g2-g4 edge remains.
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(CircuitGraph, KeyMuxRemovalMatchesAttackModel) {
  circuitgen::CircuitSpec spec;
  spec.seed = 3;
  spec.num_gates = 200;
  const Netlist nl = circuitgen::generate(spec);
  locking::MuxLockOptions opts;
  opts.key_bits = 16;
  const auto d = locking::lock_dmux(nl, opts);
  const auto muxes = attacks::trace_key_muxes(d.netlist);
  std::vector<netlist::GateId> excluded;
  for (const auto& m : muxes) excluded.push_back(m.mux);
  const CircuitGraph g = build_circuit_graph(d.netlist, excluded);
  for (const auto& m : muxes) {
    EXPECT_EQ(g.node_of(m.mux), kNoNode);
    // Data inputs and sink survive as nodes, and the unresolved wire is NOT
    // an edge (it is a target link).
    ASSERT_NE(g.node_of(m.input_a), kNoNode);
    ASSERT_NE(g.node_of(m.input_b), kNoNode);
    ASSERT_NE(g.node_of(m.sink), kNoNode);
  }
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    EXPECT_NE(g.node_type(n), GateType::kMux);
    EXPECT_NE(g.node_type(n), GateType::kInput);
  }
}

TEST(CircuitGraph, TypeFeatureIndexCoversLogicTypes) {
  std::set<int> seen;
  for (GateType t : {GateType::kAnd, GateType::kNand, GateType::kOr, GateType::kNor,
                     GateType::kXor, GateType::kXnor, GateType::kNot, GateType::kBuf}) {
    const int idx = type_feature_index(t);
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, kNumTypeFeatures);
    seen.insert(idx);
  }
  EXPECT_EQ(seen.size(), 8u);  // distinct one-hot slots
  EXPECT_EQ(type_feature_index(GateType::kConst0), type_feature_index(GateType::kBuf));
  EXPECT_THROW(type_feature_index(GateType::kInput), std::invalid_argument);
  EXPECT_THROW(type_feature_index(GateType::kMux), std::invalid_argument);
}

// --- subgraph extraction -----------------------------------------------------------

TEST(Subgraph, OneHopContainsExactlyTheNeighborhood) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto n1 = static_cast<NodeId>(g.node_of(nl.find("g1")));
  const auto n2 = static_cast<NodeId>(g.node_of(nl.find("g2")));
  SubgraphOptions opts;
  opts.hops = 1;
  const Subgraph sg = extract_enclosing_subgraph(g, {n1, n2}, opts);
  // 1-hop around {g1,g2}: g1,g2 plus g3 (adj to both) and g4 (adj to g2).
  EXPECT_EQ(sg.num_nodes(), 4u);
  EXPECT_EQ(sg.global[0], n1);
  EXPECT_EQ(sg.global[1], n2);
}

TEST(Subgraph, TargetEdgeIsRemoved) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto n1 = static_cast<NodeId>(g.node_of(nl.find("g1")));
  const auto n2 = static_cast<NodeId>(g.node_of(nl.find("g2")));
  const Subgraph sg = extract_enclosing_subgraph(g, {n1, n2});
  // Local nodes 0 and 1 must not be adjacent even though g1-g2 is a wire.
  EXPECT_FALSE(std::binary_search(sg.adj(0).begin(), sg.adj(0).end(), NodeId{1}));
  SubgraphOptions keep;
  keep.remove_target_edge = false;
  const Subgraph sg2 = extract_enclosing_subgraph(g, {n1, n2}, keep);
  EXPECT_TRUE(std::binary_search(sg2.adj(0).begin(), sg2.adj(0).end(), NodeId{1}));
}

TEST(Subgraph, DrnlTargetsGetLabelOne) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto n1 = static_cast<NodeId>(g.node_of(nl.find("g1")));
  const auto n3 = static_cast<NodeId>(g.node_of(nl.find("g3")));
  const Subgraph sg = extract_enclosing_subgraph(g, {n1, n3});
  EXPECT_EQ(sg.drnl[0], 1);
  EXPECT_EQ(sg.drnl[1], 1);
}

TEST(Subgraph, DrnlMatchesFormulaOnPath) {
  // Path graph a-b-c-d-e; target link (a, e) (non-edge).
  Netlist nl;
  const auto a = nl.add_input("pi");
  auto prev = nl.add_gate("a", GateType::kBuf, {a});
  for (const char* name : {"b", "c", "d", "e"}) {
    prev = nl.add_gate(name, GateType::kNot, {prev});
  }
  nl.mark_output(prev);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto na = static_cast<NodeId>(g.node_of(nl.find("a")));
  const auto ne = static_cast<NodeId>(g.node_of(nl.find("e")));
  SubgraphOptions opts;
  opts.hops = 4;
  const Subgraph sg = extract_enclosing_subgraph(g, {na, ne}, opts);
  ASSERT_EQ(sg.num_nodes(), 5u);
  // b: du=1, dv=3 -> d=4, f = 1 + 1 + 2*(2+0-1) = 4.
  // c: du=2, dv=2 -> d=4, f = 1 + 2 + 2*1 = 5.
  const auto nb = static_cast<NodeId>(g.node_of(nl.find("b")));
  const auto nc = static_cast<NodeId>(g.node_of(nl.find("c")));
  const auto nd = static_cast<NodeId>(g.node_of(nl.find("d")));
  for (NodeId i = 0; i < sg.num_nodes(); ++i) {
    if (sg.global[i] == nb) EXPECT_EQ(sg.drnl[i], 4);
    if (sg.global[i] == nc) EXPECT_EQ(sg.drnl[i], 5);
    if (sg.global[i] == nd) EXPECT_EQ(sg.drnl[i], 4);
  }
}

TEST(Subgraph, DrnlZeroWhenOnlyOneSideReachable) {
  // Star: u has a private neighbor p that cannot reach v once u is removed.
  const Netlist nl = parse_bench(R"(
INPUT(x)
OUTPUT(p)
OUTPUT(v)
u = NOT(x)
p = BUF(u)
m = NOT(u)
v = BUF(m)
)");
  const CircuitGraph g = build_circuit_graph(nl);
  const auto nu = static_cast<NodeId>(g.node_of(nl.find("u")));
  const auto nv = static_cast<NodeId>(g.node_of(nl.find("v")));
  const Subgraph sg = extract_enclosing_subgraph(g, {nu, nv});
  const auto np = static_cast<NodeId>(g.node_of(nl.find("p")));
  bool checked = false;
  for (NodeId i = 0; i < sg.num_nodes(); ++i) {
    if (sg.global[i] == np) {
      EXPECT_EQ(sg.drnl[i], 0);  // p's only route to v runs through u
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(Subgraph, HopsControlSize) {
  circuitgen::CircuitSpec spec;
  spec.seed = 9;
  spec.num_gates = 400;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto edges = g.all_edges();
  ASSERT_FALSE(edges.empty());
  const Link link = edges[edges.size() / 2];
  std::size_t prev = 0;
  for (int h = 1; h <= 4; ++h) {
    SubgraphOptions opts;
    opts.hops = h;
    const Subgraph sg = extract_enclosing_subgraph(g, link, opts);
    EXPECT_GE(sg.num_nodes(), prev);
    prev = sg.num_nodes();
  }
  EXPECT_GT(prev, 4u);
}

TEST(Subgraph, MaxNodesTruncatesButKeepsTargets) {
  circuitgen::CircuitSpec spec;
  spec.seed = 10;
  spec.num_gates = 400;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  const Link link = g.all_edges().front();
  SubgraphOptions opts;
  opts.hops = 3;
  opts.max_nodes = 12;
  const Subgraph sg = extract_enclosing_subgraph(g, link, opts);
  EXPECT_LE(sg.num_nodes(), 12u);
  EXPECT_EQ(sg.global[0], link.u);
  EXPECT_EQ(sg.global[1], link.v);
}

TEST(Subgraph, RejectsDegenerateTargets) {
  const Netlist nl = parse_bench(kChain);
  const CircuitGraph g = build_circuit_graph(nl);
  EXPECT_THROW(extract_enclosing_subgraph(g, {0, 0}), std::invalid_argument);
  EXPECT_THROW(extract_enclosing_subgraph(g, {0, 99}), std::invalid_argument);
}

TEST(Subgraph, MaxDrnlLabelBoundsObservedLabels) {
  circuitgen::CircuitSpec spec;
  spec.seed = 12;
  spec.num_gates = 300;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto edges = g.all_edges();
  for (int h : {1, 2, 3}) {
    SubgraphOptions opts;
    opts.hops = h;
    for (std::size_t i = 0; i < edges.size(); i += 7) {
      const Subgraph sg = extract_enclosing_subgraph(g, edges[i], opts);
      for (int lbl : sg.drnl) {
        EXPECT_GE(lbl, 0);
        EXPECT_LE(lbl, max_drnl_label(h));
      }
    }
  }
}

TEST(Subgraph, LocalAdjacencyIsSymmetric) {
  circuitgen::CircuitSpec spec;
  spec.seed = 14;
  spec.num_gates = 250;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  const Subgraph sg = extract_enclosing_subgraph(g, g.all_edges()[3]);
  for (NodeId i = 0; i < sg.num_nodes(); ++i) {
    for (NodeId j : sg.adj(i)) {
      EXPECT_TRUE(std::binary_search(sg.adj(j).begin(), sg.adj(j).end(), i));
    }
  }
}

// --- sampling -----------------------------------------------------------------------

TEST(Sampling, BalancedAndShuffled) {
  circuitgen::CircuitSpec spec;
  spec.seed = 21;
  spec.num_gates = 300;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  SamplingOptions opts;
  opts.max_links = 200;
  const auto samples = sample_links(g, {}, opts);
  EXPECT_EQ(samples.size(), 200u);
  std::size_t pos = 0;
  for (const auto& s : samples) pos += s.positive ? 1 : 0;
  EXPECT_EQ(pos, 100u);
  // Positives are edges; negatives are not.
  for (const auto& s : samples) {
    EXPECT_EQ(g.has_edge(s.link.u, s.link.v), s.positive);
  }
}

TEST(Sampling, ExcludesTargetLinks) {
  circuitgen::CircuitSpec spec;
  spec.seed = 23;
  spec.num_gates = 300;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto edges = g.all_edges();
  std::vector<Link> excluded{edges[0], edges[1], {edges[2].v, edges[2].u}};
  const auto samples = sample_links(g, excluded, {});
  for (const auto& s : samples) {
    for (const Link& x : excluded) {
      const bool same = (s.link.u == x.u && s.link.v == x.v) ||
                        (s.link.u == x.v && s.link.v == x.u);
      EXPECT_FALSE(same);
    }
  }
}

TEST(Sampling, DeterministicPerSeed) {
  circuitgen::CircuitSpec spec;
  spec.seed = 27;
  spec.num_gates = 200;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  SamplingOptions opts;
  opts.seed = 5;
  const auto a = sample_links(g, {}, opts);
  const auto b = sample_links(g, {}, opts);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].link, b[i].link);
    EXPECT_EQ(a[i].positive, b[i].positive);
  }
}

TEST(Sampling, CapsAtMaxLinks) {
  circuitgen::CircuitSpec spec;
  spec.seed = 29;
  spec.num_gates = 500;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  SamplingOptions opts;
  opts.max_links = 64;
  EXPECT_EQ(sample_links(g, {}, opts).size(), 64u);
}

TEST(Sampling, NoDuplicateNegatives) {
  circuitgen::CircuitSpec spec;
  spec.seed = 31;
  spec.num_gates = 150;
  const Netlist nl = circuitgen::generate(spec);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto samples = sample_links(g, {}, {});
  std::set<std::pair<NodeId, NodeId>> neg;
  for (const auto& s : samples) {
    if (s.positive) continue;
    const auto key = std::minmax(s.link.u, s.link.v);
    EXPECT_TRUE(neg.emplace(key.first, key.second).second);
  }
}

TEST(Sampling, RejectsTinyGraphs) {
  Netlist nl;
  const auto a = nl.add_input("a");
  nl.add_gate("g", GateType::kNot, {a});
  const CircuitGraph g = build_circuit_graph(nl);
  EXPECT_THROW(sample_links(g, {}, {}), std::invalid_argument);
}

}  // namespace
}  // namespace muxlink::graph
