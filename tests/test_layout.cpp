// Layout-equivalence tests for the CSR/arena fast paths.
//
// The CSR CircuitGraph/Subgraph layout, the epoch-stamped extraction arena,
// and the 4x4 register-blocked matmul kernels all promise BIT-IDENTICAL
// results to the naive reference implementations they replaced (retained in
// graph/subgraph_naive.h and the *_naive kernels in gnn/matrix.h). These
// tests enforce that promise on randomized circuits and matrices, including
// the degenerate shapes the blocking tails must handle.
#include <gtest/gtest.h>

#include <cstdint>
#include <random>

#include "circuitgen/generator.h"
#include "gnn/dgcnn.h"
#include "gnn/matrix.h"
#include "graph/circuit_graph.h"
#include "graph/extraction_arena.h"
#include "graph/sampling.h"
#include "graph/subgraph.h"
#include "graph/subgraph_naive.h"

namespace muxlink::graph {
namespace {

using netlist::Netlist;

Netlist random_circuit(std::uint64_t seed, std::size_t gates) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = gates;
  return circuitgen::generate(spec);
}

void expect_identical(const Subgraph& fast, const Subgraph& naive) {
  ASSERT_EQ(fast.num_nodes(), naive.num_nodes());
  EXPECT_EQ(fast.global, naive.global);
  EXPECT_EQ(fast.type, naive.type);
  EXPECT_EQ(fast.drnl, naive.drnl);
  EXPECT_EQ(fast.adj_offsets, naive.adj_offsets);
  EXPECT_EQ(fast.adj_neighbors, naive.adj_neighbors);
}

// --- CSR CircuitGraph -------------------------------------------------------

TEST(CsrCircuitGraph, NeighborsAreSortedSymmetricAndMatchHasEdge) {
  const Netlist nl = random_circuit(71, 300);
  const CircuitGraph g = build_circuit_graph(nl);
  std::size_t directed = 0;
  for (NodeId n = 0; n < g.num_nodes(); ++n) {
    const auto nb = g.neighbors(n);
    EXPECT_EQ(nb.size(), g.degree(n));
    EXPECT_TRUE(std::is_sorted(nb.begin(), nb.end()));
    for (std::size_t i = 1; i < nb.size(); ++i) EXPECT_NE(nb[i - 1], nb[i]);  // deduped
    for (NodeId v : nb) {
      EXPECT_NE(v, n);  // no self loops
      EXPECT_TRUE(g.has_edge(n, v));
      EXPECT_TRUE(g.has_edge(v, n));  // symmetric
    }
    directed += nb.size();
  }
  EXPECT_EQ(directed, 2 * g.num_edges());
  // all_edges() emits each undirected edge exactly once with u < v.
  const auto edges = g.all_edges();
  EXPECT_EQ(edges.size(), g.num_edges());
  for (const Link& e : edges) EXPECT_LT(e.u, e.v);
}

TEST(CsrCircuitGraph, NeighborsThrowsOutOfRange) {
  const Netlist nl = random_circuit(72, 50);
  const CircuitGraph g = build_circuit_graph(nl);
  EXPECT_THROW(g.neighbors(static_cast<NodeId>(g.num_nodes())), std::out_of_range);
}

// --- arena extraction vs naive reference ------------------------------------

TEST(ArenaExtraction, MatchesNaiveOnRandomCircuitsAndOptions) {
  std::mt19937_64 rng(2024);
  for (std::uint64_t seed : {1u, 2u, 3u}) {
    const Netlist nl = random_circuit(seed, 250 + 50 * seed);
    const CircuitGraph g = build_circuit_graph(nl);
    const auto edges = g.all_edges();
    ASSERT_FALSE(edges.empty());
    for (int h : {1, 2, 3}) {
      for (std::size_t max_nodes : {std::size_t{0}, std::size_t{15}}) {
        for (bool remove : {true, false}) {
          SubgraphOptions opts;
          opts.hops = h;
          opts.max_nodes = max_nodes;
          opts.remove_target_edge = remove;
          for (int trial = 0; trial < 8; ++trial) {
            // Mix of positive links (edges) and random non-edges.
            Link target;
            if (trial % 2 == 0) {
              target = edges[rng() % edges.size()];
            } else {
              target.u = static_cast<NodeId>(rng() % g.num_nodes());
              do {
                target.v = static_cast<NodeId>(rng() % g.num_nodes());
              } while (target.v == target.u);
            }
            expect_identical(extract_enclosing_subgraph(g, target, opts),
                             extract_enclosing_subgraph_naive(g, target, opts));
          }
        }
      }
    }
  }
}

TEST(ArenaExtraction, NodeSubgraphMatchesNaive) {
  const Netlist nl = random_circuit(9, 300);
  const CircuitGraph g = build_circuit_graph(nl);
  for (int h : {1, 2, 3}) {
    for (std::size_t max_nodes : {std::size_t{0}, std::size_t{10}}) {
      SubgraphOptions opts;
      opts.hops = h;
      opts.max_nodes = max_nodes;
      for (NodeId c = 0; c < g.num_nodes(); c += 13) {
        expect_identical(extract_node_subgraph(g, c, opts),
                         extract_node_subgraph_naive(g, c, opts));
      }
    }
  }
}

TEST(ArenaExtraction, RepeatedUseOfOneThreadArenaStaysIdentical) {
  // Back-to-back extractions reuse the same thread-local arena; stale epochs
  // must never leak between targets (also covered implicitly above, but this
  // hammers a single pair of alternating targets).
  const Netlist nl = random_circuit(33, 200);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto edges = g.all_edges();
  const Subgraph a0 = extract_enclosing_subgraph_naive(g, edges[0]);
  const Subgraph b0 = extract_enclosing_subgraph_naive(g, edges[1]);
  for (int i = 0; i < 50; ++i) {
    expect_identical(extract_enclosing_subgraph(g, edges[0]), a0);
    expect_identical(extract_enclosing_subgraph(g, edges[1]), b0);
  }
}

TEST(ArenaExtraction, ArenaEpochWrapResetsStamps) {
  ExtractionArena arena;
  arena.begin(4);
  arena.stamp_u[2] = arena.epoch;
  arena.epoch = 0xffffffffu;  // force the wrap on the next begin()
  arena.begin(4);
  EXPECT_EQ(arena.epoch, 1u);
  EXPECT_EQ(arena.stamp_u[2], 0u);  // stale stamp cannot alias the new epoch
}

// --- DRNL helper ------------------------------------------------------------

TEST(DrnlLabel, SharedHelperIsBoundedByMaxLabel) {
  for (int hops : {1, 2, 3, 4, 6}) {
    const int clamp = 2 * hops;
    int seen_max = 0;
    for (int a = 0; a <= clamp; ++a) {
      for (int b = 0; b <= clamp; ++b) {
        const int f = drnl_label(a, b);
        EXPECT_GE(f, 0);
        EXPECT_LE(f, max_drnl_label(hops)) << "a=" << a << " b=" << b;
        seen_max = std::max(seen_max, f);
      }
    }
    // The bound is tight: it is attained at a = b = 2*hops.
    EXPECT_EQ(seen_max, max_drnl_label(hops));
  }
  // Spot values from the paper's Eq. 3.
  EXPECT_EQ(drnl_label(1, 1), 2);
  EXPECT_EQ(drnl_label(1, 3), 4);
  EXPECT_EQ(drnl_label(2, 2), 5);
}

TEST(DrnlLabel, ExtractedLabelsRespectTheBound) {
  const Netlist nl = random_circuit(12, 300);
  const CircuitGraph g = build_circuit_graph(nl);
  const auto edges = g.all_edges();
  for (int h : {1, 2, 3}) {
    SubgraphOptions opts;
    opts.hops = h;
    for (std::size_t i = 0; i < edges.size(); i += 11) {
      const Subgraph sg = extract_enclosing_subgraph(g, edges[i], opts);
      for (int lbl : sg.drnl) {
        EXPECT_GE(lbl, 0);
        EXPECT_LE(lbl, max_drnl_label(h));
      }
    }
  }
}

}  // namespace
}  // namespace muxlink::graph

namespace muxlink::gnn {
namespace {

Matrix random_matrix(int r, int c, std::mt19937_64& rng, double sparsity = 0.0) {
  Matrix m(r, c);
  std::uniform_real_distribution<double> u(-2.0, 2.0);
  std::uniform_real_distribution<double> unit(0.0, 1.0);
  for (int i = 0; i < r; ++i) {
    for (int j = 0; j < c; ++j) m.at(i, j) = unit(rng) < sparsity ? 0.0 : u(rng);
  }
  return m;
}

void expect_bits_equal(const Matrix& a, const Matrix& b) {
  ASSERT_EQ(a.rows, b.rows);
  ASSERT_EQ(a.cols, b.cols);
  for (int i = 0; i < a.rows; ++i) {
    for (int j = 0; j < a.cols; ++j) {
      EXPECT_EQ(a.at(i, j), b.at(i, j)) << "element (" << i << "," << j << ")";
    }
  }
}

// Shapes covering empty, 1x1, sub-block, exact-block, tall, wide, and the
// DGCNN's real (n x feat) * (feat x 32) shapes.
struct Shape {
  int m, k, n;
};
const Shape kShapes[] = {{0, 0, 0}, {1, 1, 1}, {2, 3, 2},  {4, 4, 4},   {5, 7, 3},
                         {3, 2, 9}, {8, 1, 8}, {1, 16, 1}, {37, 46, 32}, {64, 32, 1}};

TEST(BlockedKernels, MatmulMatchesNaiveBitForBit) {
  std::mt19937_64 rng(7);
  for (const Shape& s : kShapes) {
    for (double sparsity : {0.0, 0.6}) {
      const Matrix a = random_matrix(s.m, s.k, rng, sparsity);
      const Matrix b = random_matrix(s.k, s.n, rng);
      Matrix fast, naive;
      matmul(a, b, fast);
      matmul_naive(a, b, naive);
      expect_bits_equal(fast, naive);
    }
  }
}

TEST(BlockedKernels, MatmulAtBAccumMatchesNaiveBitForBit) {
  std::mt19937_64 rng(8);
  for (const Shape& s : kShapes) {
    for (double sparsity : {0.0, 0.6}) {
      const Matrix a = random_matrix(s.m, s.k, rng, sparsity);  // out = a^T * b
      const Matrix b = random_matrix(s.m, s.n, rng);
      // Accumulation starts from a shared nonzero state so the preload path
      // is exercised, not just the zero-start path.
      Matrix fast = random_matrix(s.k, s.n, rng);
      Matrix naive = fast;
      matmul_at_b_accum(a, b, fast);
      matmul_at_b_accum_naive(a, b, naive);
      expect_bits_equal(fast, naive);
    }
  }
}

TEST(BlockedKernels, MatmulABtMatchesNaiveBitForBit) {
  std::mt19937_64 rng(9);
  for (const Shape& s : kShapes) {
    const Matrix a = random_matrix(s.m, s.k, rng);
    const Matrix b = random_matrix(s.n, s.k, rng);
    Matrix fast, naive;
    matmul_a_bt(a, b, fast);
    matmul_a_bt_naive(a, b, naive);
    expect_bits_equal(fast, naive);
  }
}

TEST(BlockedKernels, OutputsAreFullyOverwrittenDespiteUninitResize) {
  // Poison the output with a larger garbage-filled shape, then shrink into
  // it: every element of the result must come from the kernel, not the
  // previous contents (this is the resize_uninit contract).
  std::mt19937_64 rng(10);
  Matrix fast(50, 50);
  for (double& x : fast.data) x = 1e300;
  const Matrix a = random_matrix(6, 5, rng);
  const Matrix b = random_matrix(5, 7, rng);
  Matrix naive;
  matmul(a, b, fast);
  matmul_naive(a, b, naive);
  expect_bits_equal(fast, naive);
}

TEST(MatrixResize, UninitKeepsShapeAndGrowsZeroed) {
  Matrix m(2, 2);
  m.at(0, 0) = 1;
  m.at(0, 1) = 2;
  m.at(1, 0) = 3;
  m.at(1, 1) = 4;
  m.resize_uninit(2, 2);
  EXPECT_EQ(m.at(0, 0), 1);  // same shape: untouched
  EXPECT_EQ(m.at(1, 1), 4);
  m.resize_uninit(3, 2);
  EXPECT_EQ(m.rows, 3);
  EXPECT_EQ(m.cols, 2);
  ASSERT_EQ(m.data.size(), static_cast<std::size_t>(3 * m.ld));
  EXPECT_EQ(m.at(2, 0), 0.0);  // grown tail is value-initialized
  EXPECT_EQ(m.at(2, 1), 0.0);
  m.resize(2, 2);
  EXPECT_EQ(m.at(0, 0), 0.0);  // resize() still zero-fills
  EXPECT_EQ(m.at(1, 1), 0.0);
}

TEST(MatrixLayout, StorageIsAlignedAndPadsStayZero) {
  // The SIMD contract (DESIGN.md §10): 32-byte-aligned rows, ld a multiple
  // of the lane count, and zero pad lanes across resize paths.
  Matrix m(5, 7);
  EXPECT_EQ(m.ld, 8);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data.data()) % kSimdAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(3)) % kSimdAlign, 0u);
  for (int i = 0; i < m.rows; ++i) {
    for (int j = 0; j < m.cols; ++j) m.at(i, j) = 1e300;
  }
  // Reshape moving previously-logical (now garbage) values into pad slots.
  m.resize_uninit(7, 5);
  for (int i = 0; i < m.rows; ++i) {
    const double* p = m.row(i);
    for (int j = m.cols; j < m.ld; ++j) EXPECT_EQ(p[j], 0.0) << "pad (" << i << "," << j << ")";
  }
  std::mt19937_64 rng(11);
  m.glorot(rng);
  for (int i = 0; i < m.rows; ++i) {
    const double* p = m.row(i);
    for (int j = m.cols; j < m.ld; ++j) EXPECT_EQ(p[j], 0.0);
  }
}

TEST(GraphSampleCsr, SetAdjacencyBuildsOffsetsAndInverseDegrees) {
  GraphSample g;
  g.set_adjacency({{1, 2}, {0}, {0}});
  EXPECT_EQ(g.num_nodes(), 3);
  ASSERT_EQ(g.nbr_offsets, (std::vector<int>{0, 2, 3, 4}));
  EXPECT_EQ(g.nbr, (std::vector<int>{1, 2, 0, 0}));
  ASSERT_EQ(g.inv_deg.size(), 3u);
  EXPECT_DOUBLE_EQ(g.inv_deg[0], 1.0 / 3.0);
  EXPECT_DOUBLE_EQ(g.inv_deg[1], 0.5);
  const auto n0 = g.neighbors(0);
  EXPECT_EQ(std::vector<int>(n0.begin(), n0.end()), (std::vector<int>{1, 2}));
}

}  // namespace
}  // namespace muxlink::gnn
