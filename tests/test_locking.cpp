// Tests for the locking framework: D-MUX (S1-S4), symmetric (S5), naive MUX,
// XOR locking, key application, and the security invariants the papers claim
// (functional preservation under the correct key, no combinational loops, no
// circuit reduction under wrong keys for the learning-resilient schemes).
#include <gtest/gtest.h>

#include <random>
#include <set>

#include "circuitgen/suites.h"
#include "locking/deceptive.h"
#include "locking/mux_lock.h"
#include "locking/resolve.h"
#include "locking/simll.h"
#include "netlist/analysis.h"
#include "sim/simulator.h"

namespace muxlink::locking {
namespace {

using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

Netlist test_circuit(std::uint64_t seed = 1, std::size_t gates = 300) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = gates;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  return circuitgen::generate(spec);
}

sim::HammingOptions key_pins(const LockedDesign& d) {
  sim::HammingOptions opts;
  opts.num_patterns = 2048;
  for (std::size_t i = 0; i < d.key.size(); ++i) {
    opts.extra_inputs_b.emplace_back(d.key_input_names[i], d.key[i] != 0);
  }
  return opts;
}

// Routes every key MUX according to `key` (no simplification) and reports
// whether every original gate still reaches a primary output.
bool no_reduction_under(const Netlist& original, const LockedDesign& d,
                        const std::vector<bool>& key) {
  Netlist routed = d.netlist;  // copy
  for (const KeyGate& kg : d.key_gates) {
    const auto& fanins = routed.gate(kg.gate).fanins;
    if (routed.gate(kg.gate).type != GateType::kMux) continue;  // XOR locking
    const GateId chosen = key[kg.key_bit] ? fanins[2] : fanins[1];
    routed.rewrite_gate(kg.gate, GateType::kBuf, {chosen});
  }
  const auto reach = netlist::reaches_output(routed);
  for (GateId g = 0; g < original.num_gates(); ++g) {
    if (routed.gate(g).type == GateType::kInput) continue;
    if (!reach[g]) return false;
  }
  return true;
}

// --- shared behaviour across MUX schemes (parameterized) -----------------------

enum class Scheme { kDmux, kDmuxPlain, kSymmetric, kNaive, kXor, kSimll, kDeceptive };

LockedDesign lock_with(Scheme s, const Netlist& nl, MuxLockOptions opts) {
  switch (s) {
    case Scheme::kDmux:
      return lock_dmux(nl, opts);
    case Scheme::kDmuxPlain:
      opts.enhanced = false;
      return lock_dmux(nl, opts);
    case Scheme::kSymmetric:
      return lock_symmetric(nl, opts);
    case Scheme::kNaive:
      return lock_naive_mux(nl, opts);
    case Scheme::kXor:
      return lock_xor(nl, opts);
    case Scheme::kSimll:
      return lock_simll(nl, opts);
    case Scheme::kDeceptive:
      return lock_deceptive(nl, opts);
  }
  throw std::logic_error("unknown scheme");
}

class AllSchemes : public ::testing::TestWithParam<Scheme> {};

TEST_P(AllSchemes, CorrectKeyPreservesFunctionality) {
  const Netlist nl = test_circuit(7);
  MuxLockOptions opts;
  opts.key_bits = 32;
  opts.seed = 3;
  const LockedDesign d = lock_with(GetParam(), nl, opts);
  EXPECT_EQ(d.key.size(), 32u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, d.netlist, key_pins(d)));
}

TEST_P(AllSchemes, LockedNetlistIsAcyclicAndValid) {
  const Netlist nl = test_circuit(11);
  MuxLockOptions opts;
  opts.key_bits = 24;
  opts.seed = 5;
  const LockedDesign d = lock_with(GetParam(), nl, opts);
  EXPECT_FALSE(netlist::has_combinational_loop(d.netlist));
  EXPECT_NO_THROW(d.netlist.validate());
}

TEST_P(AllSchemes, KeyInputsFollowConvention) {
  const Netlist nl = test_circuit(13);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_with(GetParam(), nl, opts);
  ASSERT_EQ(d.key_input_names.size(), 16u);
  for (std::size_t i = 0; i < d.key_input_names.size(); ++i) {
    EXPECT_EQ(d.key_input_names[i], std::string(kKeyInputPrefix) + std::to_string(i));
    const GateId kin = d.netlist.find(d.key_input_names[i]);
    ASSERT_NE(kin, netlist::kNullGate);
    EXPECT_EQ(d.netlist.gate(kin).type, GateType::kInput);
  }
}

TEST_P(AllSchemes, DeterministicPerSeed) {
  const Netlist nl = test_circuit(17);
  MuxLockOptions opts;
  opts.key_bits = 16;
  opts.seed = 123;
  const LockedDesign a = lock_with(GetParam(), nl, opts);
  const LockedDesign b = lock_with(GetParam(), nl, opts);
  EXPECT_EQ(a.key_string(), b.key_string());
  EXPECT_EQ(a.key_gates.size(), b.key_gates.size());
  opts.seed = 124;
  const LockedDesign c = lock_with(GetParam(), nl, opts);
  EXPECT_TRUE(a.key_string() != c.key_string() ||
              a.key_gates.front().sink != c.key_gates.front().sink);
}

TEST_P(AllSchemes, ApplyCorrectKeyRecoversFunction) {
  const Netlist nl = test_circuit(19);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_with(GetParam(), nl, opts);
  const Netlist unlocked = apply_correct_key(d);
  EXPECT_TRUE(sim::functionally_equivalent(nl, unlocked, {.num_patterns = 2048}));
}

INSTANTIATE_TEST_SUITE_P(Schemes, AllSchemes,
                         ::testing::Values(Scheme::kDmux, Scheme::kDmuxPlain, Scheme::kSymmetric,
                                           Scheme::kNaive, Scheme::kXor, Scheme::kSimll,
                                           Scheme::kDeceptive),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::kDmux: return "dmux";
                             case Scheme::kDmuxPlain: return "dmux_plain";
                             case Scheme::kSymmetric: return "symmetric";
                             case Scheme::kNaive: return "naive";
                             case Scheme::kXor: return "xor";
                             case Scheme::kSimll: return "simll";
                             case Scheme::kDeceptive: return "deceptive";
                           }
                           return "?";
                         });

// --- D-MUX specifics ------------------------------------------------------------

TEST(Dmux, UsesCheapStrategiesWhenEnhanced) {
  const Netlist nl = test_circuit(23, 400);
  MuxLockOptions opts;
  opts.key_bits = 40;
  const LockedDesign d = lock_dmux(nl, opts);
  std::set<Strategy> used;
  for (const auto& loc : d.localities) used.insert(loc.strategy);
  // On a mixed-fanout circuit, eD-MUX should find at least one MO-based
  // strategy (S1-S3); S4-only would indicate the policy is broken.
  EXPECT_TRUE(used.contains(Strategy::kS1) || used.contains(Strategy::kS2) ||
              used.contains(Strategy::kS3))
      << "only S4 used";
}

TEST(Dmux, PlainVariantUsesOnlyS4) {
  const Netlist nl = test_circuit(29);
  MuxLockOptions opts;
  opts.key_bits = 16;
  opts.enhanced = false;
  const LockedDesign d = lock_dmux(nl, opts);
  for (const auto& loc : d.localities) EXPECT_EQ(loc.strategy, Strategy::kS4);
  // S4: one key bit, two MUXes.
  EXPECT_EQ(d.key_gates.size(), 32u);
}

TEST(Dmux, NoReductionUnderAnyKeyOnSmallDesign) {
  const Netlist nl = test_circuit(31, 120);
  MuxLockOptions opts;
  opts.key_bits = 8;
  const LockedDesign d = lock_dmux(nl, opts);
  // Exhaust all 256 key assignments: no original gate may ever dangle.
  for (int mask = 0; mask < 256; ++mask) {
    std::vector<bool> key(8);
    for (int b = 0; b < 8; ++b) key[b] = (mask >> b & 1) != 0;
    EXPECT_TRUE(no_reduction_under(nl, d, key)) << "mask " << mask;
  }
}

TEST(Dmux, WrongKeysCorruptOutputs) {
  const Netlist nl = test_circuit(37);
  MuxLockOptions opts;
  opts.key_bits = 32;
  const LockedDesign d = lock_dmux(nl, opts);
  auto wrong = key_pins(d);
  for (auto& [name, bit] : wrong.extra_inputs_b) bit = !bit;
  const double hd = sim::hamming_distance_percent(nl, d.netlist, wrong);
  EXPECT_GT(hd, 1.0);
}

TEST(Dmux, StrategyBookkeepingConsistent) {
  const Netlist nl = test_circuit(41, 500);
  MuxLockOptions opts;
  opts.key_bits = 48;
  const LockedDesign d = lock_dmux(nl, opts);
  std::size_t bits = 0;
  for (const auto& loc : d.localities) {
    switch (loc.strategy) {
      case Strategy::kS1:
        ASSERT_EQ(loc.key_gates.size(), 2u);
        EXPECT_NE(d.key_gates[loc.key_gates[0]].key_bit, d.key_gates[loc.key_gates[1]].key_bit);
        bits += 2;
        break;
      case Strategy::kS2:
      case Strategy::kS3:
        ASSERT_EQ(loc.key_gates.size(), 1u);
        bits += 1;
        break;
      case Strategy::kS4:
        ASSERT_EQ(loc.key_gates.size(), 2u);
        EXPECT_EQ(d.key_gates[loc.key_gates[0]].key_bit, d.key_gates[loc.key_gates[1]].key_bit);
        bits += 1;
        break;
      default:
        FAIL() << "unexpected strategy";
    }
  }
  EXPECT_EQ(bits, d.key.size());
}

TEST(Dmux, MuxInputsAreLogicGatesAndSelectIsKey) {
  const Netlist nl = test_circuit(43);
  MuxLockOptions opts;
  opts.key_bits = 24;
  const LockedDesign d = lock_dmux(nl, opts);
  for (const KeyGate& kg : d.key_gates) {
    const auto& mux = d.netlist.gate(kg.gate);
    ASSERT_EQ(mux.type, GateType::kMux);
    const auto& sel = d.netlist.gate(mux.fanins[0]);
    EXPECT_EQ(sel.type, GateType::kInput);
    EXPECT_EQ(sel.name.rfind(kKeyInputPrefix, 0), 0u);
    for (int i : {1, 2}) {
      const auto& data = d.netlist.gate(mux.fanins[i]);
      EXPECT_NE(data.type, GateType::kInput);
      EXPECT_NE(data.type, GateType::kMux);
    }
    // The recorded true driver is on the side the correct key selects.
    const GateId selected = d.key[kg.key_bit] ? mux.fanins[2] : mux.fanins[1];
    EXPECT_EQ(selected, kg.true_driver);
  }
}

TEST(Dmux, ThrowsWhenKeyDoesNotFit) {
  const Netlist nl = test_circuit(47, 60);
  MuxLockOptions opts;
  opts.key_bits = 4096;
  EXPECT_THROW(lock_dmux(nl, opts), std::invalid_argument);
  opts.allow_partial = true;
  const LockedDesign d = lock_dmux(nl, opts);
  EXPECT_LT(d.key.size(), 4096u);
  EXPECT_GT(d.key.size(), 0u);
}

// --- Symmetric (S5) specifics ----------------------------------------------------

TEST(Symmetric, PairsSingleOutputNodesWithTwoKeyBits) {
  const Netlist nl = test_circuit(53, 400);
  MuxLockOptions opts;
  opts.key_bits = 24;
  const LockedDesign d = lock_symmetric(nl, opts);
  EXPECT_EQ(d.localities.size(), 12u);  // two bits per locality
  for (const auto& loc : d.localities) {
    EXPECT_EQ(loc.strategy, Strategy::kS5);
    ASSERT_EQ(loc.key_gates.size(), 2u);
    const auto& a = d.key_gates[loc.key_gates[0]];
    const auto& b = d.key_gates[loc.key_gates[1]];
    EXPECT_NE(a.key_bit, b.key_bit);
    // Cross-wired decoys: each MUX's decoy is the other MUX's true driver.
    EXPECT_EQ(a.false_driver, b.true_driver);
    EXPECT_EQ(b.false_driver, a.true_driver);
  }
}

TEST(Symmetric, RejectsOddKeySize) {
  const Netlist nl = test_circuit(59);
  MuxLockOptions opts;
  opts.key_bits = 7;
  EXPECT_THROW(lock_symmetric(nl, opts), std::invalid_argument);
}

TEST(Symmetric, DoubleFlipSwapsWithoutReduction) {
  // Flipping BOTH bits of an S5 locality swaps the two wires (valid combo);
  // flipping exactly ONE bit dangles a driver (invalid combo). This is the
  // "only two possible combinations" structure of [14].
  const Netlist nl = test_circuit(61, 300);
  MuxLockOptions opts;
  opts.key_bits = 8;
  const LockedDesign d = lock_symmetric(nl, opts);
  std::vector<bool> correct(d.key.size());
  for (std::size_t i = 0; i < d.key.size(); ++i) correct[i] = d.key[i] != 0;
  EXPECT_TRUE(no_reduction_under(nl, d, correct));

  for (const auto& loc : d.localities) {
    const int ka = d.key_gates[loc.key_gates[0]].key_bit;
    const int kb = d.key_gates[loc.key_gates[1]].key_bit;
    auto both = correct;
    both[ka] = !both[ka];
    both[kb] = !both[kb];
    EXPECT_TRUE(no_reduction_under(nl, d, both));
    auto one = correct;
    one[ka] = !one[ka];
    EXPECT_FALSE(no_reduction_under(nl, d, one));
  }
}

// --- SimLL: similarity-based pairing ---------------------------------------------

TEST(Simll, PairsAreS4ShapedSameTypeAndCrossWired) {
  const Netlist nl = test_circuit(73, 300);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_simll(nl, opts);
  EXPECT_EQ(d.scheme, "simll");
  ASSERT_FALSE(d.localities.empty());
  for (const auto& loc : d.localities) {
    EXPECT_EQ(loc.strategy, Strategy::kSimilar);
    ASSERT_EQ(loc.key_gates.size(), 2u);
    const KeyGate& a = d.key_gates[loc.key_gates[0]];
    const KeyGate& b = d.key_gates[loc.key_gates[1]];
    // Twin MUXes share one key bit with swapped input orders (the S4 shape
    // behind the no-reduction guarantee).
    EXPECT_EQ(a.key_bit, b.key_bit);
    EXPECT_EQ(a.true_driver, b.false_driver);
    EXPECT_EQ(a.false_driver, b.true_driver);
    // The similarity contract: every fallback level of the structural
    // signature still requires matching gate types.
    EXPECT_EQ(d.netlist.gate(a.true_driver).type, d.netlist.gate(b.true_driver).type);
  }
}

TEST(Simll, NoReductionUnderAnyKey) {
  const Netlist nl = test_circuit(79, 300);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_simll(nl, opts);
  std::mt19937_64 rng(99);
  for (int trial = 0; trial < 16; ++trial) {
    std::vector<bool> key(d.key.size());
    for (std::size_t i = 0; i < key.size(); ++i) key[i] = (rng() & 1) != 0;
    EXPECT_TRUE(no_reduction_under(nl, d, key));
  }
}

// --- Deceptive locking: dummy key bits -------------------------------------------

TEST(Deceptive, MixesDummyAndRealLocalities) {
  const Netlist nl = test_circuit(83, 300);
  MuxLockOptions opts;
  opts.key_bits = 24;
  const LockedDesign d = lock_deceptive(nl, opts);
  EXPECT_EQ(d.scheme, "deceptive");
  const std::vector<int> dummies = dummy_key_bits(d);
  EXPECT_FALSE(dummies.empty());
  EXPECT_LT(dummies.size(), d.key.size()) << "no real localities inserted";
  // Each dummy MUX carries the same signal on both data inputs: one arm is
  // the watched wire, the other its BUF copy.
  for (const auto& loc : d.localities) {
    if (loc.strategy != Strategy::kDecoy) continue;
    ASSERT_EQ(loc.key_gates.size(), 1u);
    const KeyGate& kg = d.key_gates[loc.key_gates[0]];
    const auto& t = d.netlist.gate(kg.true_driver);
    const auto& f = d.netlist.gate(kg.false_driver);
    if (t.type == GateType::kBuf && t.fanins.size() == 1 && t.fanins[0] == kg.false_driver) {
      SUCCEED();
    } else if (f.type == GateType::kBuf && f.fanins.size() == 1 &&
               f.fanins[0] == kg.true_driver) {
      SUCCEED();
    } else {
      ADD_FAILURE() << "decoy MUX arms are not a wire and its BUF copy";
    }
  }
}

TEST(Deceptive, DummyBitsAreFunctionallyIrrelevant) {
  // Dummy-bit irrelevance is a hard guarantee on every design; real-bit
  // corruption is statistical (a wrong S-strategy key swaps wires, which on
  // a small circuit can happen to be functionally interchangeable), so it
  // only needs to show up across seeds.
  int corrupting_seeds = 0;
  for (const std::uint64_t seed : {89u, 97u, 101u}) {
    const Netlist nl = test_circuit(seed, 300);
    MuxLockOptions opts;
    opts.key_bits = 16;
    opts.seed = seed;
    const LockedDesign d = lock_deceptive(nl, opts);
    const std::vector<int> dummies = dummy_key_bits(d);
    ASSERT_FALSE(dummies.empty());
    // Flipping every dummy bit away from its recorded coin-flip truth must
    // keep the circuit functionally identical (HD contribution is zero).
    sim::HammingOptions hopts = key_pins(d);
    for (const int bit : dummies) {
      hopts.extra_inputs_b[static_cast<std::size_t>(bit)].second = d.key[bit] == 0;
    }
    EXPECT_TRUE(sim::functionally_equivalent(nl, d.netlist, hopts)) << "seed " << seed;
    // ... while flipping every bit (real ones included) corrupts outputs.
    for (std::size_t i = 0; i < d.key.size(); ++i) {
      hopts.extra_inputs_b[i].second = d.key[i] == 0;
    }
    if (!sim::functionally_equivalent(nl, d.netlist, hopts)) ++corrupting_seeds;
  }
  EXPECT_GE(corrupting_seeds, 1);
}

// --- Naive MUX: the SAAM vulnerability -------------------------------------------

TEST(NaiveMux, SomeWrongKeyCausesReduction) {
  const Netlist nl = test_circuit(67, 200);
  MuxLockOptions opts;
  opts.key_bits = 16;
  opts.seed = 5;
  const LockedDesign d = lock_naive_mux(nl, opts);
  std::vector<bool> all_wrong(d.key.size());
  for (std::size_t i = 0; i < d.key.size(); ++i) all_wrong[i] = d.key[i] == 0;
  // Naive MUX locking gives no reduction guarantee: with every bit wrong,
  // at least one true cone should disconnect on this seed.
  EXPECT_FALSE(no_reduction_under(nl, d, all_wrong));
}

// --- XOR locking ------------------------------------------------------------------

TEST(XorLock, GateTypeEncodesKeyBit) {
  // Without re-synthesis, XOR key-gates leak: XOR <-> key 0, XNOR <-> key 1
  // (the Fig. 1 leakage that motivates learning-resilient locking).
  const Netlist nl = test_circuit(71);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_xor(nl, opts);
  for (const KeyGate& kg : d.key_gates) {
    const auto& gate = d.netlist.gate(kg.gate);
    if (d.key[kg.key_bit]) {
      EXPECT_EQ(gate.type, GateType::kXnor);
    } else {
      EXPECT_EQ(gate.type, GateType::kXor);
    }
  }
}

TEST(XorLock, WrongBitsFlipCones) {
  const Netlist nl = test_circuit(73);
  MuxLockOptions opts;
  opts.key_bits = 8;
  const LockedDesign d = lock_xor(nl, opts);
  // A single flipped wire can be masked on random patterns, so sweep every
  // bit: at least one must visibly corrupt the outputs, and flipping all
  // bits must corrupt heavily.
  double max_single = 0.0;
  for (std::size_t i = 0; i < d.key.size(); ++i) {
    auto pins = key_pins(d);
    pins.extra_inputs_b[i].second = !pins.extra_inputs_b[i].second;
    max_single = std::max(max_single, sim::hamming_distance_percent(nl, d.netlist, pins));
  }
  EXPECT_GT(max_single, 0.0);
  auto all_wrong = key_pins(d);
  for (auto& [name, bit] : all_wrong.extra_inputs_b) bit = !bit;
  EXPECT_GT(sim::hamming_distance_percent(nl, d.netlist, all_wrong), 0.1);
}

// --- apply_key / HD ----------------------------------------------------------------

TEST(ApplyKey, PartialKeyKeepsUnknownBitsAsInputs) {
  const Netlist nl = test_circuit(79);
  MuxLockOptions opts;
  opts.key_bits = 8;
  const LockedDesign d = lock_dmux(nl, opts);
  std::vector<KeyBit> key;
  for (std::uint8_t b : d.key) key.push_back(key_bit_from_bool(b != 0));
  key[3] = KeyBit::kUnknown;
  const Netlist partial = apply_key(d, key);
  EXPECT_NE(partial.find(d.key_input_names[3]), netlist::kNullGate);
  EXPECT_EQ(partial.inputs().size(), nl.inputs().size() + 1);
}

TEST(ApplyKey, RejectsSizeMismatch) {
  const Netlist nl = test_circuit(83);
  MuxLockOptions opts;
  opts.key_bits = 8;
  const LockedDesign d = lock_dmux(nl, opts);
  EXPECT_THROW(apply_key(d, std::vector<KeyBit>(3)), std::invalid_argument);
}

TEST(AverageHd, CorrectKeyGivesZero) {
  const Netlist nl = test_circuit(89);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_dmux(nl, opts);
  std::vector<KeyBit> key;
  for (std::uint8_t b : d.key) key.push_back(key_bit_from_bool(b != 0));
  EXPECT_DOUBLE_EQ(average_hd_percent(nl, d, key, {.num_patterns = 2048}), 0.0);
}

TEST(AverageHd, UnknownBitsAreAveraged) {
  const Netlist nl = test_circuit(97);
  MuxLockOptions opts;
  opts.key_bits = 8;
  const LockedDesign d = lock_dmux(nl, opts);
  std::vector<KeyBit> key;
  for (std::uint8_t b : d.key) key.push_back(key_bit_from_bool(b != 0));
  key[0] = KeyBit::kUnknown;
  key[5] = KeyBit::kUnknown;
  const HdOptions hopts{.num_patterns = 1024};
  const double hd = average_hd_percent(nl, d, key, hopts);
  // The X bits must be averaged over the 4 enumerated completions: compare
  // against the manual enumeration.
  double manual = 0.0;
  for (int mask = 0; mask < 4; ++mask) {
    auto complete = key;
    complete[0] = (mask & 1) != 0 ? KeyBit::kOne : KeyBit::kZero;
    complete[5] = (mask & 2) != 0 ? KeyBit::kOne : KeyBit::kZero;
    sim::HammingOptions ho;
    ho.num_patterns = hopts.num_patterns;
    ho.seed = hopts.seed;
    manual += sim::hamming_distance_percent(nl, apply_key(d, complete), ho);
  }
  manual /= 4.0;
  EXPECT_NEAR(hd, manual, 1e-9);
  EXPECT_LT(hd, 50.0);
}

TEST(AverageHd, AllWrongKeyCorruptsMoreThanCorrect) {
  const Netlist nl = test_circuit(101);
  MuxLockOptions opts;
  opts.key_bits = 16;
  const LockedDesign d = lock_dmux(nl, opts);
  std::vector<KeyBit> wrong;
  for (std::uint8_t b : d.key) wrong.push_back(key_bit_from_bool(b == 0));
  EXPECT_GT(average_hd_percent(nl, d, wrong, {.num_patterns = 2048}), 1.0);
}

TEST(KeyBitHelpers, CharRendering) {
  EXPECT_EQ(to_char(KeyBit::kZero), '0');
  EXPECT_EQ(to_char(KeyBit::kOne), '1');
  EXPECT_EQ(to_char(KeyBit::kUnknown), 'X');
}

// Locking a real benchmark end-to-end (golden-path smoke).
TEST(Integration, LocksC880AtK64) {
  const Netlist nl = circuitgen::make_benchmark("c880");
  MuxLockOptions opts;
  opts.key_bits = 64;
  opts.seed = 42;
  const LockedDesign dmux = lock_dmux(nl, opts);
  EXPECT_EQ(dmux.key.size(), 64u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, dmux.netlist, key_pins(dmux)));
  const LockedDesign sym = lock_symmetric(nl, opts);
  EXPECT_EQ(sym.key.size(), 64u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, sym.netlist, key_pins(sym)));
}

}  // namespace
}  // namespace muxlink::locking
