// Observability layer: counters/gauges/histograms, deterministic merge
// across thread counts, span-tree nesting, manifest round-trips, and the
// MUXLINK_METRICS kill switch (DESIGN.md §7).
//
// The registry is process-wide; every test starts from reset() with metrics
// enabled so the cases stay order-independent.
#include "common/metrics.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/run_manifest.h"
#include "common/thread_pool.h"

namespace mc = muxlink::common;

namespace {

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    mc::set_metrics_enabled(true);
    mc::MetricsRegistry::instance().reset();
  }
  void TearDown() override {
    mc::MetricsRegistry::instance().reset();
    mc::set_metrics_enabled(true);
    mc::set_num_threads(1);
  }
};

TEST_F(MetricsTest, CounterAccumulates) {
  auto& reg = mc::MetricsRegistry::instance();
  reg.add("test.counter", 3);
  reg.add("test.counter", 4);
  MUXLINK_COUNTER_ADD("test.counter", 5);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.contains("test.counter"));
  EXPECT_EQ(snap.counters.at("test.counter"), 12);
}

TEST_F(MetricsTest, GaugeKeepsNewestWrite) {
  auto& reg = mc::MetricsRegistry::instance();
  reg.set("test.gauge", 1.5);
  reg.set("test.gauge", 2.5);
  MUXLINK_GAUGE_SET("test.gauge", 42.0);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.gauges.contains("test.gauge"));
  EXPECT_EQ(snap.gauges.at("test.gauge"), 42.0);
}

TEST_F(MetricsTest, HistogramStatsAndBuckets) {
  auto& reg = mc::MetricsRegistry::instance();
  reg.record("test.hist", 1.5);   // [1,2)   -> bucket 24
  reg.record("test.hist", 0.75);  // [0.5,1) -> bucket 23
  reg.record("test.hist", 3.0);   // [2,4)   -> bucket 25
  reg.record("test.hist", -1.0);  // non-positive -> bucket 0
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.histograms.contains("test.hist"));
  const auto& h = snap.histograms.at("test.hist");
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum, 1.5 + 0.75 + 3.0 - 1.0);
  EXPECT_EQ(h.min, -1.0);
  EXPECT_EQ(h.max, 3.0);
  EXPECT_EQ(h.mean(), h.sum / 4.0);
  EXPECT_EQ(h.buckets[24], 1u);
  EXPECT_EQ(h.buckets[23], 1u);
  EXPECT_EQ(h.buckets[25], 1u);
  EXPECT_EQ(h.buckets[0], 1u);
}

// The whole point of the shard design: the merged totals are identical for
// any thread count, because counters sum integers and the shards merge in
// registration order. Histogram sums are exact here because the recorded
// values are integral.
TEST_F(MetricsTest, DeterministicMergeAcrossThreadCounts) {
  constexpr std::size_t kItems = 1000;
  std::vector<std::int64_t> counter_totals;
  std::vector<double> hist_sums;
  std::vector<std::uint64_t> hist_counts;
  for (std::size_t threads : {1u, 2u, 8u}) {
    mc::MetricsRegistry::instance().reset();
    mc::set_num_threads(threads);
    mc::parallel_for(kItems, 8, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) {
        MUXLINK_COUNTER_ADD("merge.counter", static_cast<std::int64_t>(i % 7));
        MUXLINK_HISTOGRAM_RECORD("merge.hist", static_cast<double>(i % 13));
      }
    });
    const auto snap = mc::MetricsRegistry::instance().snapshot();
    counter_totals.push_back(snap.counters.at("merge.counter"));
    hist_sums.push_back(snap.histograms.at("merge.hist").sum);
    hist_counts.push_back(snap.histograms.at("merge.hist").count);
  }
  EXPECT_EQ(counter_totals[0], counter_totals[1]);
  EXPECT_EQ(counter_totals[0], counter_totals[2]);
  EXPECT_EQ(hist_sums[0], hist_sums[1]);
  EXPECT_EQ(hist_sums[0], hist_sums[2]);
  EXPECT_EQ(hist_counts[0], kItems);
  EXPECT_EQ(hist_counts[1], kItems);
  EXPECT_EQ(hist_counts[2], kItems);
}

const mc::SpanNode* find_child(const mc::SpanNode& node, const std::string& name) {
  for (const auto& c : node.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST_F(MetricsTest, SpanTreeNestsByCallPath) {
  for (int i = 0; i < 3; ++i) {
    MUXLINK_TRACE("outer");
    {
      MUXLINK_TRACE("inner");
    }
    {
      MUXLINK_TRACE("inner");
    }
  }
  const mc::SpanNode root = mc::MetricsRegistry::instance().trace_tree();
  const mc::SpanNode* outer = find_child(root, "outer");
  ASSERT_NE(outer, nullptr);
  EXPECT_EQ(outer->count, 3u);
  EXPECT_GE(outer->wall_seconds, 0.0);
  const mc::SpanNode* inner = find_child(*outer, "inner");
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(inner->count, 6u);  // two bodies x three iterations, one node
  // "inner" aggregates under "outer", never as its own root.
  EXPECT_EQ(find_child(root, "inner"), nullptr);
  // The parent's wall time covers its children's.
  EXPECT_GE(outer->wall_seconds, inner->wall_seconds);
}

TEST_F(MetricsTest, KillSwitchSuppressesEverything) {
  mc::set_metrics_enabled(false);
  EXPECT_FALSE(mc::metrics_enabled());
  MUXLINK_COUNTER_ADD("off.counter", 1);
  MUXLINK_GAUGE_SET("off.gauge", 1.0);
  MUXLINK_HISTOGRAM_RECORD("off.hist", 1.0);
  {
    MUXLINK_TRACE("off.span");
  }
  const auto snap = mc::MetricsRegistry::instance().snapshot();
  EXPECT_FALSE(snap.counters.contains("off.counter"));
  EXPECT_FALSE(snap.gauges.contains("off.gauge"));
  EXPECT_FALSE(snap.histograms.contains("off.hist"));
  EXPECT_EQ(find_child(mc::MetricsRegistry::instance().trace_tree(), "off.span"), nullptr);
  EXPECT_TRUE(mc::observability_to_json().is_null());

  // Re-enabling picks the same cells back up (cached pointers stay valid).
  mc::set_metrics_enabled(true);
  MUXLINK_COUNTER_ADD("off.counter", 2);
  EXPECT_EQ(mc::MetricsRegistry::instance().snapshot().counters.at("off.counter"), 2);
}

TEST_F(MetricsTest, ResetZeroesButKeepsHandles) {
  auto& reg = mc::MetricsRegistry::instance();
  mc::Counter& c = reg.counter("reset.counter");
  c.add(5);
  reg.reset();
  EXPECT_FALSE(reg.snapshot().counters.contains("reset.counter"));
  c.add(7);  // the pre-reset handle still works
  EXPECT_EQ(reg.snapshot().counters.at("reset.counter"), 7);
}

TEST_F(MetricsTest, ObservabilityJsonShape) {
  auto& reg = mc::MetricsRegistry::instance();
  reg.add("obs.counter", 2);
  reg.set("obs.gauge", 3.5);
  reg.record("obs.hist", 4.0);
  {
    MUXLINK_TRACE("obs.span");
  }
  const mc::Json obs = mc::observability_to_json();
  ASSERT_TRUE(obs.is_object());
  EXPECT_EQ(obs.at("counters").int_or("obs.counter", -1), 2);
  EXPECT_EQ(obs.at("gauges").number_or("obs.gauge", -1.0), 3.5);
  const mc::Json& h = obs.at("histograms").at("obs.hist");
  EXPECT_EQ(h.int_or("count", -1), 1);
  EXPECT_EQ(h.number_or("sum", -1.0), 4.0);
  bool saw_span = false;
  for (const mc::Json& s : obs.at("spans").items()) {
    saw_span = saw_span || s.string_or("name", "") == "obs.span";
  }
  EXPECT_TRUE(saw_span);
}

TEST_F(MetricsTest, ManifestJsonRoundTrip) {
  mc::RunManifest m;
  m.tool = "test_tool";
  m.git_sha = "abc123";
  m.build_type = "Release";
  m.build_flags = "-O2";
  m.threads = 4;
  m.seed = 99;
  m.circuit = "c432";
  m.scheme = "dmux";
  m.key_bits = 32;
  m.add_stage("sample", 0.25);
  m.add_stage("train", 1.5);
  m.add_result("accuracy_percent", 87.5);
  m.add_result("training_links", 300.0);
  m.telemetry_path = "epochs.jsonl";
  m.extra = mc::Json::object();
  m.extra["hops"] = 3;

  const mc::Json j = m.to_json();
  // The wire format must survive a serialize -> parse cycle exactly
  // (shortest-round-trip doubles, int64 counters).
  const mc::Json reparsed = mc::Json::parse(j.dump());
  EXPECT_EQ(j, reparsed);

  const mc::RunManifest back = mc::RunManifest::from_json(reparsed);
  EXPECT_EQ(back.schema, "muxlink.run/v1");
  EXPECT_EQ(back.tool, m.tool);
  EXPECT_EQ(back.git_sha, m.git_sha);
  EXPECT_EQ(back.threads, m.threads);
  EXPECT_EQ(back.seed, m.seed);
  EXPECT_EQ(back.circuit, m.circuit);
  EXPECT_EQ(back.scheme, m.scheme);
  EXPECT_EQ(back.key_bits, m.key_bits);
  ASSERT_EQ(back.stages.size(), 2u);
  EXPECT_EQ(back.stages[0].first, "sample");
  EXPECT_EQ(back.stages[0].second, 0.25);
  ASSERT_EQ(back.results.size(), 2u);
  EXPECT_EQ(back.results[0].first, "accuracy_percent");
  EXPECT_EQ(back.results[0].second, 87.5);
  EXPECT_EQ(back.telemetry_path, m.telemetry_path);
  EXPECT_EQ(back.extra.int_or("hops", -1), 3);
  // Round-tripping the rebuilt manifest reproduces the same document.
  EXPECT_EQ(back.to_json(), j);
}

TEST_F(MetricsTest, JsonNumberRoundTrip) {
  mc::Json j = mc::Json::object();
  j["big"] = std::int64_t{1} << 53;
  j["neg"] = -7;
  j["frac"] = 0.1;
  j["tiny"] = 1e-300;
  const mc::Json back = mc::Json::parse(j.dump());
  EXPECT_EQ(back.int_or("big", 0), std::int64_t{1} << 53);
  EXPECT_EQ(back.int_or("neg", 0), -7);
  EXPECT_EQ(back.number_or("frac", 0.0), 0.1);
  EXPECT_EQ(back.number_or("tiny", 0.0), 1e-300);
  EXPECT_EQ(j, back);
}

TEST_F(MetricsTest, JsonlWriterAppends) {
  const std::string path = ::testing::TempDir() + "/muxlink_test_telemetry.jsonl";
  std::remove(path.c_str());
  {
    mc::JsonlWriter w(path);
    mc::Json a = mc::Json::object();
    a["epoch"] = 1;
    w.write(a);
  }
  {
    mc::JsonlWriter w(path);  // reopening appends, never truncates
    mc::Json b = mc::Json::object();
    b["epoch"] = 2;
    w.write(b);
  }
  std::ifstream is(path);
  std::string line;
  std::vector<std::int64_t> epochs;
  while (std::getline(is, line)) {
    epochs.push_back(mc::Json::parse(line).int_or("epoch", -1));
  }
  std::remove(path.c_str());
  ASSERT_EQ(epochs.size(), 2u);
  EXPECT_EQ(epochs[0], 1);
  EXPECT_EQ(epochs[1], 2);
}

}  // namespace
