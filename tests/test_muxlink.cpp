// End-to-end tests for the MuxLink attack pipeline: tracing, training,
// likelihood scoring, Algorithm-1 post-processing, threshold semantics, and
// design recovery. GNN settings are scaled down to keep the suite fast; the
// full paper protocol lives in the bench harnesses.
#include <gtest/gtest.h>

#include "attacks/metrics.h"
#include "circuitgen/generator.h"
#include "locking/mux_lock.h"
#include "muxlink/attack.h"
#include "netlist/analysis.h"
#include "sim/simulator.h"

namespace muxlink::core {
namespace {

using attacks::score_key;
using locking::KeyBit;
using locking::LockedDesign;
using locking::MuxLockOptions;
using netlist::Netlist;

Netlist test_circuit(std::uint64_t seed = 1, std::size_t gates = 220) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = gates;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  return circuitgen::generate(spec);
}

MuxLinkOptions fast_options() {
  MuxLinkOptions opts;
  opts.epochs = 30;
  opts.learning_rate = 1e-3;
  opts.max_train_links = 600;
  opts.seed = 3;
  return opts;
}

// Shared fixture: one trained attack reused by several assertions (training
// is the expensive part).
class MuxLinkPipeline : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    original_ = new Netlist(test_circuit(7));
    MuxLockOptions lo;
    lo.key_bits = 16;
    lo.seed = 11;
    design_ = new LockedDesign(locking::lock_dmux(*original_, lo));
    attack_ = new MuxLinkAttack(fast_options());
    result_ = new MuxLinkResult(attack_->run(design_->netlist));
  }
  static void TearDownTestSuite() {
    delete result_;
    delete attack_;
    delete design_;
    delete original_;
    result_ = nullptr;
    attack_ = nullptr;
    design_ = nullptr;
    original_ = nullptr;
  }

  static Netlist* original_;
  static LockedDesign* design_;
  static MuxLinkAttack* attack_;
  static MuxLinkResult* result_;
};

Netlist* MuxLinkPipeline::original_ = nullptr;
LockedDesign* MuxLinkPipeline::design_ = nullptr;
MuxLinkAttack* MuxLinkPipeline::attack_ = nullptr;
MuxLinkResult* MuxLinkPipeline::result_ = nullptr;

TEST_F(MuxLinkPipeline, ProducesOneBitPerKeyInput) {
  EXPECT_EQ(result_->key.size(), design_->key.size());
  EXPECT_EQ(result_->likelihoods.size(), design_->key_gates.size());
  EXPECT_EQ(result_->target_links, 2 * design_->key_gates.size());
  EXPECT_GT(result_->training_links, 100u);
  EXPECT_GE(result_->sortpool_k, 10);
  EXPECT_GT(result_->total_seconds, 0.0);
}

TEST_F(MuxLinkPipeline, BeatsRandomGuessingClearly) {
  const auto s = score_key(design_->key, result_->key);
  // The paper reports ~95% on real ISCAS-85; the scaled-down protocol on a
  // small synthetic circuit must still clearly beat the 50% coin-flip that
  // SWEEP/SCOPE/SAAM are stuck at (they decide nothing here).
  EXPECT_GT(s.accuracy_percent(), 60.0);
  EXPECT_GT(s.kpa_percent(), 60.0);
}

TEST_F(MuxLinkPipeline, LikelihoodsAreProbabilities) {
  for (const auto& ml : result_->likelihoods) {
    EXPECT_GE(ml.score_a, 0.0);
    EXPECT_LE(ml.score_a, 1.0);
    EXPECT_GE(ml.score_b, 0.0);
    EXPECT_LE(ml.score_b, 1.0);
  }
}

TEST_F(MuxLinkPipeline, PostProcessMatchesRunThreshold) {
  const auto key = attack_->post_process(attack_->options().threshold);
  EXPECT_EQ(key, result_->key);
}

TEST_F(MuxLinkPipeline, ThresholdOneWithholdsEverything) {
  // th = 1 demands a likelihood gap of a full unit: nothing qualifies
  // (paper Fig. 9: PC -> 100%, decision rate -> small).
  const auto key = attack_->post_process(1.0 + 1e-12);
  for (KeyBit b : key) EXPECT_EQ(b, KeyBit::kUnknown);
  const auto s = score_key(design_->key, key);
  EXPECT_DOUBLE_EQ(s.precision_percent(), 100.0);
}

TEST_F(MuxLinkPipeline, ThresholdZeroDecidesEverything) {
  const auto key = attack_->post_process(0.0);
  std::size_t undecided = 0;
  for (KeyBit b : key) undecided += b == KeyBit::kUnknown ? 1 : 0;
  // δ = 0 exactly is the only way to stay undecided at th = 0.
  EXPECT_LE(undecided, 1u);
}

TEST_F(MuxLinkPipeline, DecisionRateFallsMonotonicallyWithThreshold) {
  std::size_t prev = result_->key.size() + 1;
  for (double th : {0.0, 0.2, 0.4, 0.6, 0.8, 1.0}) {
    const auto key = attack_->post_process(th);
    std::size_t decided = 0;
    for (KeyBit b : key) decided += b != KeyBit::kUnknown ? 1 : 0;
    EXPECT_LE(decided, prev);
    prev = decided;
  }
}

TEST_F(MuxLinkPipeline, RecoverDesignWithCorrectKeyMatchesOriginal) {
  std::vector<KeyBit> truth;
  for (std::uint8_t b : design_->key) truth.push_back(locking::key_bit_from_bool(b != 0));
  const Netlist recovered = recover_design(design_->netlist, truth);
  EXPECT_TRUE(sim::functionally_equivalent(*original_, recovered, {.num_patterns = 2048}));
  // All key logic folded away.
  const auto stats = netlist::compute_stats(recovered);
  EXPECT_EQ(stats.count_by_type[static_cast<int>(netlist::GateType::kMux)], 0u);
}

TEST_F(MuxLinkPipeline, RecoverDesignKeepsUnknownBitsAsInputs) {
  auto key = result_->key;
  key[2] = KeyBit::kUnknown;
  const Netlist recovered = recover_design(design_->netlist, key);
  EXPECT_TRUE(recovered.contains("keyinput2"));
}

TEST_F(MuxLinkPipeline, RecoverDesignRejectsWrongKeySize) {
  EXPECT_THROW(recover_design(design_->netlist, std::vector<KeyBit>(3)), std::invalid_argument);
}

// --- standalone behaviours -------------------------------------------------------

TEST(MuxLinkAttackTest, ThrowsWithoutKeyMuxes) {
  const Netlist nl = test_circuit(9);
  MuxLinkAttack attack(fast_options());
  EXPECT_THROW(attack.run(nl), netlist::NetlistError);
}

TEST(MuxLinkAttackTest, PostProcessBeforeRunThrows) {
  MuxLinkAttack attack(fast_options());
  EXPECT_THROW(attack.post_process(0.01), std::logic_error);
}

TEST(MuxLinkAttackTest, DeterministicForFixedSeed) {
  const Netlist nl = test_circuit(13, 180);
  MuxLockOptions lo;
  lo.key_bits = 8;
  const LockedDesign d = locking::lock_dmux(nl, lo);
  MuxLinkOptions opts = fast_options();
  opts.epochs = 10;
  MuxLinkAttack a1(opts), a2(opts);
  const auto r1 = a1.run(d.netlist);
  const auto r2 = a2.run(d.netlist);
  EXPECT_EQ(r1.key, r2.key);
  for (std::size_t i = 0; i < r1.likelihoods.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.likelihoods[i].score_a, r2.likelihoods[i].score_a);
  }
}

TEST(MuxLinkAttackTest, BreaksSymmetricLockingAboveChance) {
  // Slightly larger circuit: on ~200-gate designs the random decoys sit too
  // close to their sinks to separate reliably (the paper sees the same size
  // trend in Fig. 7).
  const Netlist nl = test_circuit(17, 350);
  MuxLockOptions lo;
  lo.key_bits = 16;
  lo.seed = 5;
  const LockedDesign d = locking::lock_symmetric(nl, lo);
  MuxLinkOptions opts = fast_options();
  opts.epochs = 40;
  opts.max_train_links = 900;
  MuxLinkAttack attack(opts);
  const auto result = attack.run(d.netlist);
  const auto s = score_key(d.key, result.key);
  EXPECT_GT(s.accuracy_percent(), 65.0);
}

TEST(MuxLinkAttackTest, PairedBitsRouteDistinctDrivers) {
  // Algorithm 1 contract on S5: when both bits of a paired locality are
  // decided, the two MUXes must route different wires of the shared pair.
  const Netlist nl = test_circuit(19);
  MuxLockOptions lo;
  lo.key_bits = 12;
  const LockedDesign d = locking::lock_symmetric(nl, lo);
  MuxLinkAttack attack(fast_options());
  const auto result = attack.run(d.netlist);
  for (const auto& loc : result.localities) {
    if (loc.kind != attacks::TracedLocality::Kind::kPaired) continue;
    const auto& m1 = result.likelihoods[loc.muxes[0]];
    const auto& m2 = result.likelihoods[loc.muxes[1]];
    const KeyBit b1 = result.key[m1.mux.key_bit];
    const KeyBit b2 = result.key[m2.mux.key_bit];
    if (b1 == KeyBit::kUnknown || b2 == KeyBit::kUnknown) continue;
    const auto routed1 = b1 == KeyBit::kZero ? m1.mux.input_a : m1.mux.input_b;
    const auto routed2 = b2 == KeyBit::kZero ? m2.mux.input_a : m2.mux.input_b;
    EXPECT_NE(routed1, routed2);
  }
}

TEST(MuxLinkAttackTest, EnsembleAveragesLikelihoods) {
  const Netlist nl = test_circuit(31, 180);
  MuxLockOptions lo;
  lo.key_bits = 8;
  const LockedDesign d = locking::lock_dmux(nl, lo);
  MuxLinkOptions opts = fast_options();
  opts.epochs = 6;
  opts.ensemble = 2;
  MuxLinkAttack attack(opts);
  const auto r2 = attack.run(d.netlist);
  EXPECT_EQ(r2.key.size(), 8u);
  for (const auto& ml : r2.likelihoods) {
    EXPECT_GE(ml.score_a, 0.0);
    EXPECT_LE(ml.score_a, 1.0);
  }
  // Deterministic for a fixed seed, and distinct from the single model.
  MuxLinkAttack again(opts);
  EXPECT_EQ(again.run(d.netlist).key, r2.key);
  opts.ensemble = 1;
  MuxLinkAttack single(opts);
  const auto r1 = single.run(d.netlist);
  bool any_diff = false;
  for (std::size_t i = 0; i < r1.likelihoods.size(); ++i) {
    any_diff = any_diff || r1.likelihoods[i].score_a != r2.likelihoods[i].score_a;
  }
  EXPECT_TRUE(any_diff);
}

TEST(MuxLinkAttackTest, HonorsSubgraphSizeCap) {
  const Netlist nl = test_circuit(23, 180);
  MuxLockOptions lo;
  lo.key_bits = 8;
  const LockedDesign d = locking::lock_dmux(nl, lo);
  MuxLinkOptions opts = fast_options();
  opts.epochs = 5;
  opts.max_subgraph_nodes = 16;
  MuxLinkAttack attack(opts);
  EXPECT_NO_THROW(attack.run(d.netlist));
}

TEST(MuxLinkAttackTest, OneHopStillLearnsSomething) {
  // Paper Fig. 10: even h = 1 deciphers connections with decent accuracy —
  // the fundamental leak of MUX-based locking.
  const Netlist nl = test_circuit(29);
  MuxLockOptions lo;
  lo.key_bits = 16;
  const LockedDesign d = locking::lock_dmux(nl, lo);
  MuxLinkOptions opts = fast_options();
  opts.hops = 1;
  MuxLinkAttack attack(opts);
  const auto result = attack.run(d.netlist);
  const auto s = score_key(d.key, result.key);
  EXPECT_GT(s.accuracy_percent(), 50.0);
}

}  // namespace
}  // namespace muxlink::core
