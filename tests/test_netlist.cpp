// Unit tests for the netlist substrate: gate types, netlist construction and
// mutation, structural analyses, and BENCH round-tripping.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "netlist/analysis.h"
#include "netlist/bench_io.h"
#include "netlist/gate_type.h"
#include "netlist/netlist.h"

namespace muxlink::netlist {
namespace {

// --- GateType ---------------------------------------------------------------

TEST(GateType, RoundTripsThroughStrings) {
  for (int t = 0; t < kNumGateTypes; ++t) {
    const auto type = static_cast<GateType>(t);
    const auto parsed = gate_type_from_string(to_string(type));
    ASSERT_TRUE(parsed.has_value()) << to_string(type);
    EXPECT_EQ(*parsed, type);
  }
}

TEST(GateType, ParsingIsCaseInsensitive) {
  EXPECT_EQ(gate_type_from_string("nand"), GateType::kNand);
  EXPECT_EQ(gate_type_from_string("Xor"), GateType::kXor);
  EXPECT_EQ(gate_type_from_string("mux"), GateType::kMux);
}

TEST(GateType, AcceptsCommonAliases) {
  EXPECT_EQ(gate_type_from_string("BUFF"), GateType::kBuf);
  EXPECT_EQ(gate_type_from_string("INV"), GateType::kNot);
  EXPECT_EQ(gate_type_from_string("vcc"), GateType::kConst1);
  EXPECT_EQ(gate_type_from_string("gnd"), GateType::kConst0);
}

TEST(GateType, RejectsUnknownNames) {
  EXPECT_FALSE(gate_type_from_string("FLIPFLOP").has_value());
  EXPECT_FALSE(gate_type_from_string("").has_value());
}

TEST(GateType, ArityRanges) {
  EXPECT_EQ(min_fanin(GateType::kInput), 0);
  EXPECT_EQ(max_fanin(GateType::kInput), 0);
  EXPECT_EQ(min_fanin(GateType::kNot), 1);
  EXPECT_EQ(max_fanin(GateType::kNot), 1);
  EXPECT_EQ(min_fanin(GateType::kAnd), 2);
  EXPECT_LT(max_fanin(GateType::kAnd), 0);  // unbounded
  EXPECT_EQ(min_fanin(GateType::kMux), 3);
  EXPECT_EQ(max_fanin(GateType::kMux), 3);
}

TEST(GateType, ConstantPredicate) {
  EXPECT_TRUE(is_constant(GateType::kConst0));
  EXPECT_TRUE(is_constant(GateType::kConst1));
  EXPECT_FALSE(is_constant(GateType::kAnd));
  EXPECT_FALSE(is_constant(GateType::kInput));
}

// --- Netlist construction ----------------------------------------------------

Netlist make_small() {
  // a, b -> n1 = AND(a, b); n2 = NOT(n1); outputs: n1, n2
  Netlist nl("small");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId n1 = nl.add_gate("n1", GateType::kAnd, {a, b});
  const GateId n2 = nl.add_gate("n2", GateType::kNot, {n1});
  nl.mark_output(n1);
  nl.mark_output(n2);
  return nl;
}

TEST(Netlist, BuildsAndLooksUpGates) {
  Netlist nl = make_small();
  EXPECT_EQ(nl.num_gates(), 4u);
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  const GateId n1 = nl.find("n1");
  ASSERT_NE(n1, kNullGate);
  EXPECT_EQ(nl.gate(n1).type, GateType::kAnd);
  EXPECT_EQ(nl.gate(n1).fanins.size(), 2u);
  EXPECT_EQ(nl.find("nope"), kNullGate);
}

TEST(Netlist, RejectsDuplicateNames) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_input("a"), NetlistError);
  EXPECT_THROW(nl.add_gate("a", GateType::kNot, {0}), NetlistError);
}

TEST(Netlist, RejectsEmptyName) {
  Netlist nl;
  EXPECT_THROW(nl.add_input(""), NetlistError);
}

TEST(Netlist, RejectsArityViolations) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  EXPECT_THROW(nl.add_gate("g", GateType::kAnd, {a}), NetlistError);
  EXPECT_THROW(nl.add_gate("g", GateType::kNot, {a, a}), NetlistError);
  EXPECT_THROW(nl.add_gate("g", GateType::kMux, {a, a}), NetlistError);
  EXPECT_NO_THROW(nl.add_gate("g", GateType::kMux, {a, a, a}));
}

TEST(Netlist, RejectsDanglingFanin) {
  Netlist nl;
  nl.add_input("a");
  EXPECT_THROW(nl.add_gate("g", GateType::kNot, {42}), NetlistError);
}

TEST(Netlist, MarkOutputIsIdempotent) {
  Netlist nl = make_small();
  const GateId n1 = nl.find("n1");
  nl.mark_output(n1);
  nl.mark_output(n1);
  EXPECT_EQ(nl.outputs().size(), 2u);
  nl.unmark_output(n1);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_FALSE(nl.is_output(n1));
}

TEST(Netlist, MarkOutputRejectsBadId) {
  Netlist nl = make_small();
  EXPECT_THROW(nl.mark_output(99), NetlistError);
}

TEST(Netlist, FanoutsTrackConnections) {
  Netlist nl = make_small();
  const GateId a = nl.find("a");
  const GateId n1 = nl.find("n1");
  const GateId n2 = nl.find("n2");
  const auto& fo = nl.fanouts();
  ASSERT_EQ(fo[a].size(), 1u);
  EXPECT_EQ(fo[a][0].sink, n1);
  EXPECT_EQ(fo[a][0].port, 0u);
  ASSERT_EQ(fo[n1].size(), 1u);
  EXPECT_EQ(fo[n1][0].sink, n2);
  EXPECT_TRUE(fo[n2].empty());
}

TEST(Netlist, FanoutGateCountDeduplicatesSinks) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  nl.add_gate("g", GateType::kAnd, {a, a});  // both ports from `a`
  EXPECT_EQ(nl.fanout_gate_count(a), 1u);
}

TEST(Netlist, ReplaceFaninRewires) {
  Netlist nl = make_small();
  const GateId b = nl.find("b");
  const GateId n2 = nl.find("n2");
  nl.replace_fanin(n2, 0, b);
  EXPECT_EQ(nl.gate(n2).fanins[0], b);
  // Fanout cache refreshed.
  EXPECT_EQ(nl.fanout_gate_count(nl.find("n1")), 0u);
  EXPECT_EQ(nl.fanout_gate_count(b), 2u);
}

TEST(Netlist, ReplaceFaninValidatesArguments) {
  Netlist nl = make_small();
  EXPECT_THROW(nl.replace_fanin(99, 0, 0), NetlistError);
  EXPECT_THROW(nl.replace_fanin(nl.find("n2"), 5, 0), NetlistError);
  EXPECT_THROW(nl.replace_fanin(nl.find("n2"), 0, 99), NetlistError);
}

TEST(Netlist, RewriteGateChangesTypeAndFanins) {
  Netlist nl = make_small();
  const GateId n2 = nl.find("n2");
  const GateId a = nl.find("a");
  const GateId b = nl.find("b");
  nl.rewrite_gate(n2, GateType::kXor, {a, b});
  EXPECT_EQ(nl.gate(n2).type, GateType::kXor);
  EXPECT_EQ(nl.gate(n2).fanins.size(), 2u);
  nl.validate();
}

TEST(Netlist, RewriteGateGuards) {
  Netlist nl = make_small();
  EXPECT_THROW(nl.rewrite_gate(nl.find("a"), GateType::kBuf, {0}), NetlistError);
  EXPECT_THROW(nl.rewrite_gate(nl.find("n1"), GateType::kInput, {}), NetlistError);
  EXPECT_THROW(nl.rewrite_gate(nl.find("n1"), GateType::kNot, {0, 1}), NetlistError);
}

TEST(Netlist, RenameGateUpdatesIndex) {
  Netlist nl = make_small();
  const GateId n1 = nl.find("n1");
  nl.rename_gate(n1, "renamed");
  EXPECT_EQ(nl.find("renamed"), n1);
  EXPECT_EQ(nl.find("n1"), kNullGate);
  EXPECT_THROW(nl.rename_gate(n1, "a"), NetlistError);  // duplicate
  nl.validate();
}

TEST(Netlist, RemoveGatesCompactsIds) {
  Netlist nl;
  const GateId a = nl.add_input("a");
  const GateId dead = nl.add_gate("dead", GateType::kNot, {a});
  const GateId keep = nl.add_gate("keep", GateType::kBuf, {a});
  (void)dead;
  nl.mark_output(keep);
  std::vector<bool> mask(nl.num_gates(), false);
  mask[1] = true;  // `dead`
  const auto remap = nl.remove_gates(mask);
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(remap[1], kNullGate);
  EXPECT_EQ(nl.find("dead"), kNullGate);
  const GateId keep2 = nl.find("keep");
  ASSERT_NE(keep2, kNullGate);
  EXPECT_EQ(nl.gate(keep2).fanins[0], nl.find("a"));
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.outputs()[0], keep2);
  nl.validate();
}

TEST(Netlist, RemoveGatesRefusesLiveDependents) {
  Netlist nl = make_small();
  std::vector<bool> mask(nl.num_gates(), false);
  mask[nl.find("a")] = true;  // n1 still uses it
  EXPECT_THROW(nl.remove_gates(mask), NetlistError);
}

TEST(Netlist, RemoveGatesRefusesDeadOutputs) {
  Netlist nl = make_small();
  std::vector<bool> mask(nl.num_gates(), false);
  mask[nl.find("n2")] = true;  // is a PO
  EXPECT_THROW(nl.remove_gates(mask), NetlistError);
}

TEST(Netlist, ValidatePassesOnWellFormed) {
  Netlist nl = make_small();
  EXPECT_NO_THROW(nl.validate());
}

// --- Analyses -----------------------------------------------------------------

Netlist make_diamond() {
  // a -> n1, n2; n1,n2 -> n3 (PO). Classic reconvergent fanout.
  Netlist nl("diamond");
  const GateId a = nl.add_input("a");
  const GateId b = nl.add_input("b");
  const GateId n1 = nl.add_gate("n1", GateType::kNot, {a});
  const GateId n2 = nl.add_gate("n2", GateType::kAnd, {a, b});
  const GateId n3 = nl.add_gate("n3", GateType::kOr, {n1, n2});
  nl.mark_output(n3);
  return nl;
}

TEST(Analysis, TopologicalOrderRespectsDependencies) {
  Netlist nl = make_diamond();
  const auto order = topological_order(nl);
  ASSERT_EQ(order.size(), nl.num_gates());
  std::vector<std::size_t> pos(nl.num_gates());
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = i;
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (GateId f : nl.gate(g).fanins) EXPECT_LT(pos[f], pos[g]);
  }
}

TEST(Analysis, LoopDetection) {
  Netlist nl = make_diamond();
  EXPECT_FALSE(has_combinational_loop(nl));
  // Create a cycle: n1's fanin <- n3.
  nl.replace_fanin(nl.find("n1"), 0, nl.find("n3"));
  EXPECT_TRUE(has_combinational_loop(nl));
  EXPECT_THROW(topological_order(nl), NetlistError);
}

TEST(Analysis, TransitiveFanout) {
  Netlist nl = make_diamond();
  EXPECT_TRUE(in_transitive_fanout(nl, nl.find("a"), nl.find("n3")));
  EXPECT_TRUE(in_transitive_fanout(nl, nl.find("n1"), nl.find("n3")));
  EXPECT_FALSE(in_transitive_fanout(nl, nl.find("n3"), nl.find("a")));
  EXPECT_FALSE(in_transitive_fanout(nl, nl.find("n1"), nl.find("n2")));
  EXPECT_FALSE(in_transitive_fanout(nl, nl.find("a"), nl.find("a")));
}

TEST(Analysis, FaninCone) {
  Netlist nl = make_diamond();
  const auto cone = fanin_cone(nl, nl.find("n3"));
  EXPECT_TRUE(cone[nl.find("n3")]);
  EXPECT_TRUE(cone[nl.find("n1")]);
  EXPECT_TRUE(cone[nl.find("n2")]);
  EXPECT_TRUE(cone[nl.find("a")]);
  EXPECT_TRUE(cone[nl.find("b")]);
  const auto cone1 = fanin_cone(nl, nl.find("n1"));
  EXPECT_FALSE(cone1[nl.find("b")]);
}

TEST(Analysis, FanoutCone) {
  Netlist nl = make_diamond();
  const auto cone = fanout_cone(nl, nl.find("b"));
  EXPECT_TRUE(cone[nl.find("b")]);
  EXPECT_TRUE(cone[nl.find("n2")]);
  EXPECT_TRUE(cone[nl.find("n3")]);
  EXPECT_FALSE(cone[nl.find("n1")]);
  EXPECT_FALSE(cone[nl.find("a")]);
}

TEST(Analysis, ReachesOutput) {
  Netlist nl = make_diamond();
  nl.add_gate("orphan", GateType::kNot, {nl.find("a")});
  const auto reach = reaches_output(nl);
  EXPECT_TRUE(reach[nl.find("n3")]);
  EXPECT_TRUE(reach[nl.find("a")]);
  EXPECT_FALSE(reach[nl.find("orphan")]);
}

TEST(Analysis, LogicLevels) {
  Netlist nl = make_diamond();
  const auto lvl = logic_levels(nl);
  EXPECT_EQ(lvl[nl.find("a")], 0);
  EXPECT_EQ(lvl[nl.find("n1")], 1);
  EXPECT_EQ(lvl[nl.find("n2")], 1);
  EXPECT_EQ(lvl[nl.find("n3")], 2);
}

TEST(Analysis, StatsCountTypesAndFanoutClasses) {
  Netlist nl = make_diamond();
  const auto s = compute_stats(nl);
  EXPECT_EQ(s.num_gates, 5u);
  EXPECT_EQ(s.num_inputs, 2u);
  EXPECT_EQ(s.num_outputs, 1u);
  EXPECT_EQ(s.num_logic_gates, 3u);
  EXPECT_EQ(s.depth, 2);
  EXPECT_EQ(s.count_by_type[static_cast<int>(GateType::kAnd)], 1u);
  EXPECT_EQ(s.count_by_type[static_cast<int>(GateType::kInput)], 2u);
  // a drives n1 and n2 but is a PI, so not counted; n1, n2 drive one sink each;
  // n3 drives none.
  EXPECT_EQ(s.single_output_gates, 2u);
  EXPECT_EQ(s.multi_output_gates, 0u);
  EXPECT_FALSE(format_stats(s).empty());
}

// --- BENCH IO ------------------------------------------------------------------

constexpr const char* kC17 = R"(# c17 ISCAS-85
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";

TEST(BenchIO, ParsesC17) {
  const Netlist nl = parse_bench(kC17, "c17");
  EXPECT_EQ(nl.inputs().size(), 5u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.num_gates(), 11u);
  const auto s = compute_stats(nl);
  EXPECT_EQ(s.count_by_type[static_cast<int>(GateType::kNand)], 6u);
  EXPECT_EQ(s.depth, 3);
}

TEST(BenchIO, RoundTripPreservesStructure) {
  const Netlist nl = parse_bench(kC17, "c17");
  const Netlist nl2 = parse_bench(write_bench(nl), "c17rt");
  EXPECT_EQ(nl2.num_gates(), nl.num_gates());
  EXPECT_EQ(nl2.inputs().size(), nl.inputs().size());
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    const Gate& orig = nl.gate(g);
    const GateId g2 = nl2.find(orig.name);
    ASSERT_NE(g2, kNullGate) << orig.name;
    EXPECT_EQ(nl2.gate(g2).type, orig.type);
    ASSERT_EQ(nl2.gate(g2).fanins.size(), orig.fanins.size());
    for (std::size_t i = 0; i < orig.fanins.size(); ++i) {
      EXPECT_EQ(nl2.gate(nl2.gate(g2).fanins[i]).name, nl.gate(orig.fanins[i]).name);
    }
  }
}

TEST(BenchIO, HandlesOutOfOrderDefinitions) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
y = NOT(x)
x = BUF(a)
)");
  EXPECT_EQ(nl.num_gates(), 3u);
  EXPECT_EQ(nl.gate(nl.find("y")).type, GateType::kNot);
}

TEST(BenchIO, HandlesMuxAndConstants) {
  const Netlist nl = parse_bench(R"(
INPUT(s)
INPUT(a)
INPUT(b)
OUTPUT(y)
c1 = CONST1()
m = MUX(s, a, b)
y = AND(m, c1)
)");
  EXPECT_EQ(nl.gate(nl.find("m")).type, GateType::kMux);
  EXPECT_EQ(nl.gate(nl.find("c1")).type, GateType::kConst1);
}

TEST(BenchIO, IgnoresCommentsAndBlankLines) {
  const Netlist nl = parse_bench("\n# hi\nINPUT(a)  # trailing\n\nOUTPUT(a)\n");
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_TRUE(nl.is_output(nl.find("a")));
}

TEST(BenchIO, ToleratesWhitespaceVariants) {
  const Netlist nl = parse_bench("INPUT( a )\nOUTPUT( y )\ny   =  nand( a ,a )\n");
  EXPECT_EQ(nl.gate(nl.find("y")).type, GateType::kNand);
}

TEST(BenchIO, ErrorsCarryLineNumbers) {
  try {
    parse_bench("INPUT(a)\nz = FROB(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
}

TEST(BenchIO, RejectsUndefinedSignals) {
  EXPECT_THROW(parse_bench("OUTPUT(y)\ny = NOT(ghost)\n"), BenchParseError);
  EXPECT_THROW(parse_bench("INPUT(a)\nOUTPUT(zzz)\n"), BenchParseError);
}

TEST(BenchIO, RejectsCombinationalLoops) {
  EXPECT_THROW(parse_bench("INPUT(a)\nx = NOT(y)\ny = NOT(x)\n"), BenchParseError);
}

TEST(BenchIO, RejectsDuplicateDefinitions) {
  EXPECT_THROW(parse_bench("INPUT(a)\nx = NOT(a)\nx = BUF(a)\n"), BenchParseError);
  EXPECT_THROW(parse_bench("INPUT(a)\na = NOT(a)\n"), BenchParseError);
}

TEST(BenchIO, RejectsMalformedLines) {
  EXPECT_THROW(parse_bench("WHAT IS THIS\n"), BenchParseError);
  EXPECT_THROW(parse_bench("INPUT(a, b)\n"), BenchParseError);
  EXPECT_THROW(parse_bench(" = NOT(a)\n"), BenchParseError);
  EXPECT_THROW(parse_bench("x = (a)\n"), BenchParseError);
}

TEST(BenchIO, RejectsInputOnAssignment) {
  EXPECT_THROW(parse_bench("x = INPUT()\n"), BenchParseError);
}

TEST(BenchIO, HandlesCrlfLineEndings) {
  // Windows-authored benchmark files reach the parser unconverted.
  const Netlist nl = parse_bench("INPUT(a)\r\nOUTPUT(y)\r\ny = NOT(a)\r\n");
  EXPECT_EQ(nl.num_gates(), 2u);
  EXPECT_EQ(nl.gate(nl.find("y")).type, GateType::kNot);
}

TEST(BenchIO, StripsUtf8ByteOrderMark) {
  const Netlist nl = parse_bench("\xEF\xBB\xBFINPUT(a)\nOUTPUT(a)\n");
  EXPECT_EQ(nl.num_gates(), 1u);
  EXPECT_TRUE(nl.is_output(nl.find("a")));
  // The BOM is only accepted at the start of the file, not mid-stream.
  EXPECT_THROW(parse_bench("INPUT(a)\n\xEF\xBB\xBFOUTPUT(a)\n"), BenchParseError);
}

TEST(BenchIO, HandlesCommentAtEofWithoutNewline) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(a)\n# trailing comment, no newline");
  EXPECT_EQ(nl.num_gates(), 1u);
  // Same for a directive as the unterminated last line.
  const Netlist nl2 = parse_bench("INPUT(a)\nOUTPUT(a)");
  EXPECT_TRUE(nl2.is_output(nl2.find("a")));
}

TEST(BenchIO, DuplicateOutputReportsBothLines) {
  try {
    parse_bench("INPUT(a)\nOUTPUT(a)\n\nOUTPUT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 4"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate OUTPUT declaration of 'a'"), std::string::npos) << msg;
    EXPECT_NE(msg.find("first declared at line 2"), std::string::npos) << msg;
  }
}

TEST(BenchIO, DuplicateInputReportsLine) {
  try {
    parse_bench("INPUT(a)\nINPUT(a)\n");
    FAIL() << "expected BenchParseError";
  } catch (const BenchParseError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("line 2"), std::string::npos) << msg;
    EXPECT_NE(msg.find("duplicate INPUT declaration of 'a'"), std::string::npos) << msg;
  }
}

TEST(BenchIO, FileRoundTrip) {
  const Netlist nl = parse_bench(kC17, "c17");
  const auto path = std::filesystem::temp_directory_path() / "muxlink_c17.bench";
  write_bench_file(nl, path);
  const Netlist back = read_bench_file(path);
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace muxlink::netlist
