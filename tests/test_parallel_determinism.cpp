// Determinism contract of the parallel pipeline: training, the full MuxLink
// attack, Hamming distance, and the rank-sum AUC must produce bit-identical
// results at 1, 2, and 8 threads.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "circuitgen/generator.h"
#include "common/thread_pool.h"
#include "gnn/encoding.h"
#include "gnn/trainer.h"
#include "graph/circuit_graph.h"
#include "graph/sampling.h"
#include "graph/subgraph.h"
#include "locking/mux_lock.h"
#include "muxlink/attack.h"
#include "sim/simulator.h"

namespace muxlink {
namespace {

netlist::Netlist small_circuit(std::uint64_t seed, std::size_t gates) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = gates;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  return circuitgen::generate(spec);
}

std::vector<gnn::GraphSample> link_dataset(const graph::CircuitGraph& g, std::size_t max_links) {
  const auto links = graph::sample_links(g, {}, {.max_links = max_links, .seed = 3});
  graph::SubgraphOptions sopts;
  sopts.hops = 2;
  std::vector<gnn::GraphSample> data;
  for (const auto& ls : links) {
    const auto sg = graph::extract_enclosing_subgraph(g, ls.link, sopts);
    data.push_back(gnn::encode_subgraph(sg, sopts.hops, ls.positive ? 1 : 0));
  }
  return data;
}

struct TrainRun {
  gnn::TrainReport report;
  std::vector<double> predictions;
};

TrainRun train_at(std::size_t threads, const std::vector<gnn::GraphSample>& data) {
  common::set_num_threads(threads);
  gnn::DgcnnConfig cfg;
  cfg.conv_channels = {8, 8, 1};
  cfg.conv1d_channels1 = 4;
  cfg.conv1d_channels2 = 6;
  cfg.conv1d_kernel2 = 3;
  cfg.dense_units = 16;
  cfg.dropout = 0.5;  // exercises the per-sample dropout seeding
  cfg.sortpool_k = 10;
  cfg.learning_rate = 1e-3;
  cfg.seed = 11;
  gnn::Dgcnn model(gnn::feature_dim_for_hops(2), cfg);
  gnn::TrainOptions topts;
  topts.epochs = 8;
  topts.batch_size = 10;  // not a multiple of the 4-sample grad chunk
  topts.seed = 2;
  TrainRun run;
  run.report = gnn::train_link_predictor(model, data, topts);
  for (const auto& s : data) run.predictions.push_back(model.predict(s));
  return run;
}

TEST(ParallelDeterminism, TrainerBitIdenticalAcrossThreadCounts) {
  const auto nl = small_circuit(4, 150);
  const auto g = graph::build_circuit_graph(nl);
  const auto data = link_dataset(g, 80);
  ASSERT_GT(data.size(), 20u);

  const TrainRun t1 = train_at(1, data);
  const TrainRun t2 = train_at(2, data);
  const TrainRun t8 = train_at(8, data);
  common::set_num_threads(0);

  for (const TrainRun* other : {&t2, &t8}) {
    EXPECT_EQ(t1.report.best_epoch, other->report.best_epoch);
    EXPECT_EQ(t1.report.best_val_accuracy, other->report.best_val_accuracy);
    EXPECT_EQ(t1.report.final_train_loss, other->report.final_train_loss);
    ASSERT_EQ(t1.predictions.size(), other->predictions.size());
    for (std::size_t i = 0; i < t1.predictions.size(); ++i) {
      ASSERT_EQ(t1.predictions[i], other->predictions[i]) << "prediction " << i;
    }
  }
}

core::MuxLinkResult attack_at(std::size_t threads, const netlist::Netlist& locked) {
  common::set_num_threads(threads);
  core::MuxLinkOptions opts;
  opts.epochs = 6;
  opts.learning_rate = 1e-3;
  opts.max_train_links = 300;
  opts.seed = 3;
  core::MuxLinkAttack attack(opts);
  return attack.run(locked);
}

TEST(ParallelDeterminism, AttackBitIdenticalAcrossThreadCounts) {
  const auto nl = small_circuit(7, 200);
  locking::MuxLockOptions lo;
  lo.key_bits = 8;
  lo.seed = 11;
  const auto d = locking::lock_dmux(nl, lo);

  const auto r1 = attack_at(1, d.netlist);
  const auto r2 = attack_at(2, d.netlist);
  const auto r8 = attack_at(8, d.netlist);
  common::set_num_threads(0);

  for (const core::MuxLinkResult* other : {&r2, &r8}) {
    EXPECT_EQ(r1.key, other->key);
    EXPECT_EQ(r1.training.best_epoch, other->training.best_epoch);
    EXPECT_EQ(r1.training.best_val_accuracy, other->training.best_val_accuracy);
    EXPECT_EQ(r1.training.final_train_loss, other->training.final_train_loss);
    ASSERT_EQ(r1.likelihoods.size(), other->likelihoods.size());
    for (std::size_t i = 0; i < r1.likelihoods.size(); ++i) {
      ASSERT_EQ(r1.likelihoods[i].score_a, other->likelihoods[i].score_a) << "mux " << i;
      ASSERT_EQ(r1.likelihoods[i].score_b, other->likelihoods[i].score_b) << "mux " << i;
    }
  }
}

TEST(ParallelDeterminism, EnsembleBitIdenticalAcrossThreadCounts) {
  const auto nl = small_circuit(9, 180);
  locking::MuxLockOptions lo;
  lo.key_bits = 6;
  const auto d = locking::lock_dmux(nl, lo);

  core::MuxLinkOptions opts;
  opts.epochs = 4;
  opts.learning_rate = 1e-3;
  opts.max_train_links = 200;
  opts.seed = 5;
  opts.ensemble = 3;

  common::set_num_threads(1);
  const auto r1 = core::MuxLinkAttack(opts).run(d.netlist);
  common::set_num_threads(8);
  const auto r8 = core::MuxLinkAttack(opts).run(d.netlist);
  common::set_num_threads(0);

  EXPECT_EQ(r1.key, r8.key);
  for (std::size_t i = 0; i < r1.likelihoods.size(); ++i) {
    ASSERT_EQ(r1.likelihoods[i].score_a, r8.likelihoods[i].score_a);
    ASSERT_EQ(r1.likelihoods[i].score_b, r8.likelihoods[i].score_b);
  }
}

TEST(ParallelDeterminism, HammingDistanceIdenticalAcrossThreadCounts) {
  const auto a = small_circuit(13, 160);
  locking::MuxLockOptions lo;
  lo.key_bits = 4;
  const auto d = locking::lock_dmux(a, lo);

  sim::HammingOptions hopts;
  hopts.num_patterns = 4096;
  common::set_num_threads(1);
  const double hd1 = sim::hamming_distance_percent(a, d.netlist, hopts);
  common::set_num_threads(8);
  const double hd8 = sim::hamming_distance_percent(a, d.netlist, hopts);
  common::set_num_threads(0);
  EXPECT_EQ(hd1, hd8);
}

}  // namespace
}  // namespace muxlink
