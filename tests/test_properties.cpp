// Cross-module randomized property suite: BENCH round-trip fuzzing,
// netlist invariants under mutation, simulator consistency against a naive
// reference evaluator, and locking-metadata coherence across all schemes.
#include <gtest/gtest.h>

#include <map>
#include <random>

#include "circuitgen/generator.h"
#include "locking/mux_lock.h"
#include "locking/trll.h"
#include "netlist/analysis.h"
#include "netlist/bench_io.h"
#include "sim/simulator.h"
#include "synth/synthesis.h"

namespace muxlink {
namespace {

using netlist::Gate;
using netlist::GateId;
using netlist::GateType;
using netlist::Netlist;

circuitgen::CircuitSpec spec_for(std::uint64_t seed) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = 60 + seed % 200;
  spec.num_inputs = 6 + seed % 12;
  spec.num_outputs = 2 + seed % 6;
  return spec;
}

// --- BENCH round-trip fuzz ------------------------------------------------------

class BenchRoundTrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BenchRoundTrip, ParseWriteParseIsIdentity) {
  const Netlist nl = circuitgen::generate(spec_for(GetParam()));
  const std::string once = netlist::write_bench(nl);
  const Netlist back = netlist::parse_bench(once, nl.name());
  const std::string twice = netlist::write_bench(back);
  EXPECT_EQ(once, twice);
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_EQ(back.inputs().size(), nl.inputs().size());
  EXPECT_EQ(back.outputs().size(), nl.outputs().size());
  EXPECT_TRUE(sim::functionally_equivalent(nl, back, {.num_patterns = 512}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, BenchRoundTrip, ::testing::Values(1, 12, 123, 1234, 12345));

// --- naive reference evaluator vs bit-parallel simulator ---------------------------

bool naive_eval(const Netlist& nl, GateId g, const std::map<GateId, bool>& inputs,
                std::map<GateId, bool>& memo) {
  if (const auto it = memo.find(g); it != memo.end()) return it->second;
  const Gate& gate = nl.gate(g);
  bool v = false;
  switch (gate.type) {
    case GateType::kInput:
      v = inputs.at(g);
      break;
    case GateType::kConst0:
      v = false;
      break;
    case GateType::kConst1:
      v = true;
      break;
    case GateType::kBuf:
      v = naive_eval(nl, gate.fanins[0], inputs, memo);
      break;
    case GateType::kNot:
      v = !naive_eval(nl, gate.fanins[0], inputs, memo);
      break;
    case GateType::kAnd:
    case GateType::kNand: {
      v = true;
      for (GateId f : gate.fanins) v = v && naive_eval(nl, f, inputs, memo);
      if (gate.type == GateType::kNand) v = !v;
      break;
    }
    case GateType::kOr:
    case GateType::kNor: {
      v = false;
      for (GateId f : gate.fanins) v = v || naive_eval(nl, f, inputs, memo);
      if (gate.type == GateType::kNor) v = !v;
      break;
    }
    case GateType::kXor:
    case GateType::kXnor: {
      v = false;
      for (GateId f : gate.fanins) v = v != naive_eval(nl, f, inputs, memo);
      if (gate.type == GateType::kXnor) v = !v;
      break;
    }
    case GateType::kMux: {
      const bool sel = naive_eval(nl, gate.fanins[0], inputs, memo);
      v = naive_eval(nl, gate.fanins[sel ? 2 : 1], inputs, memo);
      break;
    }
  }
  memo[g] = v;
  return v;
}

class SimulatorReference : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimulatorReference, BitParallelMatchesRecursiveEvaluator) {
  const Netlist nl = circuitgen::generate(spec_for(GetParam() * 7 + 1));
  const sim::Simulator simulator(nl);
  std::mt19937_64 rng(GetParam());
  for (int t = 0; t < 8; ++t) {
    std::map<GateId, bool> in;
    std::vector<bool> vec;
    for (GateId g : nl.inputs()) {
      const bool b = (rng() & 1) != 0;
      in[g] = b;
      vec.push_back(b);
    }
    const auto fast = simulator.run_single(vec);
    std::map<GateId, bool> memo;
    for (std::size_t o = 0; o < nl.outputs().size(); ++o) {
      EXPECT_EQ(fast[o], naive_eval(nl, nl.outputs()[o], in, memo)) << "output " << o;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimulatorReference, ::testing::Values(2, 3, 5, 7, 11));

// --- cleanup is idempotent and monotone ----------------------------------------------

class CleanupProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CleanupProperties, IdempotentAndNeverGrows) {
  const Netlist nl = circuitgen::generate(spec_for(GetParam() * 13 + 3));
  const Netlist once = synth::cleanup(nl);
  const Netlist twice = synth::cleanup(once);
  const auto s1 = netlist::compute_stats(once);
  const auto s2 = netlist::compute_stats(twice);
  EXPECT_EQ(s1.num_logic_gates, s2.num_logic_gates) << "cleanup must be a fixpoint";
  EXPECT_LE(s1.num_logic_gates, netlist::compute_stats(nl).num_logic_gates);
  EXPECT_TRUE(sim::functionally_equivalent(once, twice, {.num_patterns = 512}));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanupProperties, ::testing::Values(4, 8, 15, 16, 23, 42));

// --- locking metadata coherence across every scheme -----------------------------------

enum class AnyScheme { kXor, kNaive, kDmux, kSym, kTrll };

class LockingMetadata
    : public ::testing::TestWithParam<std::tuple<AnyScheme, std::uint64_t>> {};

TEST_P(LockingMetadata, RecordsAreInternallyConsistent) {
  const auto [scheme, seed] = GetParam();
  const Netlist nl = circuitgen::generate(spec_for(seed + 100));
  locking::MuxLockOptions opts;
  opts.key_bits = 12;
  opts.seed = seed;
  opts.allow_partial = true;
  locking::LockedDesign d;
  switch (scheme) {
    case AnyScheme::kXor:
      d = locking::lock_xor(nl, opts);
      break;
    case AnyScheme::kNaive:
      d = locking::lock_naive_mux(nl, opts);
      break;
    case AnyScheme::kDmux:
      d = locking::lock_dmux(nl, opts);
      break;
    case AnyScheme::kSym:
      d = locking::lock_symmetric(nl, opts);
      break;
    case AnyScheme::kTrll:
      d = locking::lock_trll(nl, opts);
      break;
  }
  // One name per bit, resolvable, of INPUT type.
  ASSERT_EQ(d.key_input_names.size(), d.key.size());
  for (const auto& name : d.key_input_names) {
    const GateId kin = d.netlist.find(name);
    ASSERT_NE(kin, netlist::kNullGate);
    EXPECT_EQ(d.netlist.gate(kin).type, GateType::kInput);
  }
  // Every key gate references a valid bit and a real gate; every locality
  // references valid key-gate indices.
  for (const auto& kg : d.key_gates) {
    EXPECT_GE(kg.key_bit, 0);
    EXPECT_LT(static_cast<std::size_t>(kg.key_bit), d.key.size());
    EXPECT_LT(kg.gate, d.netlist.num_gates());
  }
  std::size_t referenced = 0;
  for (const auto& loc : d.localities) {
    for (const auto idx : loc.key_gates) {
      EXPECT_LT(idx, d.key_gates.size());
      ++referenced;
    }
  }
  EXPECT_EQ(referenced, d.key_gates.size()) << "every key gate belongs to one locality";
  // The locked netlist stays healthy.
  EXPECT_FALSE(netlist::has_combinational_loop(d.netlist));
  EXPECT_NO_THROW(d.netlist.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, LockingMetadata,
    ::testing::Combine(::testing::Values(AnyScheme::kXor, AnyScheme::kNaive, AnyScheme::kDmux,
                                         AnyScheme::kSym, AnyScheme::kTrll),
                       ::testing::Values(1, 2, 3)));

// --- stats/analysis consistency --------------------------------------------------------

class StatsConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StatsConsistency, CountsAddUp) {
  const Netlist nl = circuitgen::generate(spec_for(GetParam() * 31 + 7));
  const auto s = netlist::compute_stats(nl);
  std::size_t total = 0;
  for (int t = 0; t < netlist::kNumGateTypes; ++t) total += s.count_by_type[t];
  EXPECT_EQ(total, s.num_gates);
  EXPECT_EQ(s.num_gates, nl.num_gates());
  EXPECT_EQ(s.count_by_type[static_cast<int>(GateType::kInput)], s.num_inputs);
  // Logic levels are consistent with the topological order.
  const auto levels = netlist::logic_levels(nl);
  for (GateId g = 0; g < nl.num_gates(); ++g) {
    for (GateId f : nl.gate(g).fanins) EXPECT_LT(levels[f], levels[g]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsConsistency, ::testing::Values(3, 6, 9, 12));

}  // namespace
}  // namespace muxlink
