// Tests for the SAT substrate (CDCL solver, Tseitin encoding) and the
// oracle-guided SAT attack baseline [2].
#include <gtest/gtest.h>

#include <random>

#include "attacks/metrics.h"
#include "attacks/sat_attack.h"
#include "circuitgen/generator.h"
#include "circuitgen/suites.h"
#include "locking/mux_lock.h"
#include "netlist/bench_io.h"
#include "sat/cnf.h"
#include "sat/solver.h"
#include "synth/synthesis.h"
#include "sim/simulator.h"

namespace muxlink {
namespace {

using netlist::GateType;
using netlist::Netlist;
using sat::Lit;
using sat::Result;
using sat::Solver;
using sat::Var;

// --- solver -----------------------------------------------------------------------

TEST(SatSolver, TrivialSatAndModel) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(a, b);
  s.add_unit(-a);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
}

TEST(SatSolver, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_unit(a);
  s.add_unit(-a);
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, EmptyClauseIsUnsat) {
  Solver s;
  (void)s.new_var();
  s.add_clause({});
  EXPECT_EQ(s.solve(), Result::kUnsat);
}

TEST(SatSolver, TautologiesAreDropped) {
  Solver s;
  const Var a = s.new_var();
  s.add_binary(a, -a);  // tautology: no constraint
  EXPECT_EQ(s.solve(), Result::kSat);
}

TEST(SatSolver, RejectsOutOfRangeLiterals) {
  Solver s;
  (void)s.new_var();
  EXPECT_THROW(s.add_unit(5), std::invalid_argument);
  EXPECT_THROW(s.add_unit(0), std::invalid_argument);
}

TEST(SatSolver, XorChainForcesUniqueModel) {
  // x1 xor x2 = 1, x2 xor x3 = 1, x1 = 1  =>  x2 = 0, x3 = 1.
  Solver s;
  const Var x1 = s.new_var();
  const Var x2 = s.new_var();
  const Var x3 = s.new_var();
  auto add_xor1 = [&](Var p, Var q) {  // p xor q = 1
    s.add_binary(p, q);
    s.add_binary(-p, -q);
  };
  add_xor1(x1, x2);
  add_xor1(x2, x3);
  s.add_unit(x1);
  ASSERT_EQ(s.solve(), Result::kSat);
  EXPECT_TRUE(s.model_value(x1));
  EXPECT_FALSE(s.model_value(x2));
  EXPECT_TRUE(s.model_value(x3));
}

TEST(SatSolver, PigeonholeThreeIntoTwoIsUnsat) {
  // PHP(3,2): 3 pigeons, 2 holes. Var p_{i,j} = pigeon i in hole j.
  Solver s;
  Var p[3][2];
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 3; ++i) s.add_binary(p[i][0], p[i][1]);  // each pigeon somewhere
  for (int j = 0; j < 2; ++j) {
    for (int i = 0; i < 3; ++i) {
      for (int k = i + 1; k < 3; ++k) s.add_binary(-p[i][j], -p[k][j]);
    }
  }
  EXPECT_EQ(s.solve(), Result::kUnsat);
  EXPECT_GT(s.conflicts(), 0);
}

TEST(SatSolver, AssumptionsAreTemporary) {
  Solver s;
  const Var a = s.new_var();
  const Var b = s.new_var();
  s.add_binary(-a, b);  // a -> b
  EXPECT_EQ(s.solve({a, -b}), Result::kUnsat);
  EXPECT_EQ(s.solve({a}), Result::kSat);
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.solve({-b, a}), Result::kUnsat);
  EXPECT_EQ(s.solve(), Result::kSat);  // formula itself is satisfiable
}

TEST(SatSolver, ConflictBudgetReturnsUnknown) {
  // PHP(6,5) needs a decent number of conflicts; a budget of 1 cannot do it.
  Solver s;
  std::vector<std::vector<Var>> p(6, std::vector<Var>(5));
  for (auto& row : p) {
    for (Var& v : row) v = s.new_var();
  }
  for (int i = 0; i < 6; ++i) {
    std::vector<Lit> c;
    for (int j = 0; j < 5; ++j) c.push_back(p[i][j]);
    s.add_clause(c);
  }
  for (int j = 0; j < 5; ++j) {
    for (int i = 0; i < 6; ++i) {
      for (int k = i + 1; k < 6; ++k) s.add_binary(-p[i][j], -p[k][j]);
    }
  }
  EXPECT_EQ(s.solve({}, 1), Result::kUnknown);
  EXPECT_EQ(s.solve({}, -1), Result::kUnsat);
}

// Random 3-SAT instances cross-checked against brute force.
class RandomSat : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomSat, AgreesWithBruteForce) {
  std::mt19937_64 rng(GetParam());
  const int num_vars = 10;
  const int num_clauses = 38;  // near the phase transition
  std::vector<std::vector<Lit>> clauses;
  for (int c = 0; c < num_clauses; ++c) {
    std::vector<Lit> cl;
    for (int k = 0; k < 3; ++k) {
      const int v = static_cast<int>(rng() % num_vars) + 1;
      cl.push_back((rng() & 1) != 0 ? v : -v);
    }
    clauses.push_back(cl);
  }
  // Brute force.
  bool brute_sat = false;
  for (int mask = 0; mask < (1 << num_vars) && !brute_sat; ++mask) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool any = false;
      for (Lit l : cl) {
        const bool val = (mask >> (std::abs(l) - 1) & 1) != 0;
        any = any || (l > 0 ? val : !val);
      }
      all = all && any;
      if (!all) break;
    }
    brute_sat = all;
  }
  Solver s;
  for (int v = 0; v < num_vars; ++v) (void)s.new_var();
  for (auto cl : clauses) s.add_clause(std::move(cl));
  const Result r = s.solve();
  EXPECT_EQ(r == Result::kSat, brute_sat);
  if (r == Result::kSat) {
    // Model must satisfy every clause.
    for (const auto& cl : clauses) {
      bool any = false;
      for (Lit l : cl) {
        const bool val = s.model_value(std::abs(l));
        any = any || (l > 0 ? val : !val);
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSat,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12));

// --- CNF encoding ---------------------------------------------------------------------

TEST(Cnf, GateEncodingMatchesSimulator) {
  // Exhaustively check every gate type on a small circuit: for each input
  // assignment, the CNF restricted to those inputs must force exactly the
  // simulator's outputs.
  const Netlist nl = netlist::parse_bench(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(o1)
OUTPUT(o2)
OUTPUT(o3)
OUTPUT(o4)
OUTPUT(o5)
t1 = NAND(a, b)
t2 = NOR(b, c)
t3 = XOR(a, c)
o1 = AND(t1, t2, t3)
o2 = OR(t1, c)
o3 = XNOR(t2, t3)
o4 = MUX(a, t1, t2)
o5 = NOT(t3)
)");
  const sim::Simulator simulator(nl);
  for (int mask = 0; mask < 8; ++mask) {
    Solver s;
    const sat::CircuitInstance inst(s, nl);
    std::vector<bool> in;
    std::vector<Lit> assumptions;
    for (int i = 0; i < 3; ++i) {
      const bool bit = (mask >> i & 1) != 0;
      in.push_back(bit);
      const Var v = inst.var_of(nl.inputs()[i]);
      assumptions.push_back(bit ? v : -v);
    }
    ASSERT_EQ(s.solve(assumptions), Result::kSat);
    const auto expect = simulator.run_single(in);
    const auto outs = inst.output_vars();
    for (std::size_t o = 0; o < outs.size(); ++o) {
      EXPECT_EQ(s.model_value(outs[o]), expect[o]) << "mask " << mask << " output " << o;
    }
  }
}

TEST(Cnf, SharedInputsTieInstances) {
  const Netlist nl = netlist::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  Solver s;
  const sat::CircuitInstance c1(s, nl);
  std::unordered_map<std::string, Var> shared{{"a", c1.var_of(nl.inputs()[0])}};
  const sat::CircuitInstance c2(s, nl, shared);
  // Same input var: outputs must always agree -> asserting disagreement is UNSAT.
  const Var diff = sat::encode_xor(s, c1.output_vars()[0], c2.output_vars()[0]);
  EXPECT_EQ(s.solve({diff}), Result::kUnsat);
}

TEST(Cnf, EquivalenceMiterProvesCleanupCorrect) {
  // Formal (not just simulated) equivalence of cleanup() on a random
  // circuit: the miter between original and cleaned is UNSAT.
  circuitgen::CircuitSpec spec;
  spec.seed = 77;
  spec.num_gates = 120;
  spec.num_inputs = 10;
  spec.num_outputs = 5;
  const Netlist nl = circuitgen::generate(spec);
  const Netlist clean = synth::cleanup(nl);

  Solver s;
  const sat::CircuitInstance c1(s, nl);
  std::unordered_map<std::string, Var> shared;
  for (auto g : nl.inputs()) shared.emplace(nl.gate(g).name, c1.var_of(g));
  const sat::CircuitInstance c2(s, clean, shared);
  std::vector<Lit> diffs;
  const auto o1 = c1.output_vars();
  // Match outputs by name.
  for (std::size_t i = 0; i < nl.outputs().size(); ++i) {
    const auto name = nl.gate(nl.outputs()[i]).name;
    diffs.push_back(sat::encode_xor(s, o1[i], c2.var_of_name(name)));
  }
  const Var miter = sat::encode_or(s, diffs);
  EXPECT_EQ(s.solve({miter}), Result::kUnsat);
}

TEST(Cnf, UnknownSignalNameThrows) {
  const Netlist nl = netlist::parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  Solver s;
  const sat::CircuitInstance inst(s, nl);
  EXPECT_THROW(inst.var_of_name("ghost"), std::invalid_argument);
  EXPECT_GT(inst.var_of_name("y"), 0);
}

// --- SAT attack ------------------------------------------------------------------------

Netlist attack_circuit(std::uint64_t seed) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = 150;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  return circuitgen::generate(spec);
}

// The SAT attack must return a FUNCTIONALLY correct key (possibly different
// bits than the ground truth when decoys are equivalent).
void expect_functionally_correct(const Netlist& original, const locking::LockedDesign& d,
                                 const attacks::SatAttackResult& r) {
  ASSERT_TRUE(r.success);
  ASSERT_EQ(r.key.size(), d.key_size());
  sim::HammingOptions pins;
  pins.num_patterns = 4096;
  for (std::size_t i = 0; i < r.key.size(); ++i) {
    pins.extra_inputs_b.emplace_back(d.key_input_names[i], r.key[i] == locking::KeyBit::kOne);
  }
  EXPECT_TRUE(sim::functionally_equivalent(original, d.netlist, pins));
}

TEST(SatAttack, BreaksXorLocking) {
  const Netlist nl = attack_circuit(5);
  locking::MuxLockOptions lo;
  lo.key_bits = 16;
  const auto d = locking::lock_xor(nl, lo);
  const auto r = attacks::sat_attack(d.netlist, attacks::make_simulation_oracle(nl, d.netlist));
  expect_functionally_correct(nl, d, r);
  EXPECT_LT(r.iterations, 64u);
}

TEST(SatAttack, BreaksDmux) {
  const Netlist nl = attack_circuit(7);
  locking::MuxLockOptions lo;
  lo.key_bits = 16;
  const auto d = locking::lock_dmux(nl, lo);
  const auto r = attacks::sat_attack(d.netlist, attacks::make_simulation_oracle(nl, d.netlist));
  expect_functionally_correct(nl, d, r);
}

TEST(SatAttack, BreaksSymmetricLocking) {
  const Netlist nl = attack_circuit(9);
  locking::MuxLockOptions lo;
  lo.key_bits = 12;
  const auto d = locking::lock_symmetric(nl, lo);
  const auto r = attacks::sat_attack(d.netlist, attacks::make_simulation_oracle(nl, d.netlist));
  expect_functionally_correct(nl, d, r);
}

TEST(SatAttack, IterationCapReturnsFailure) {
  const Netlist nl = attack_circuit(11);
  locking::MuxLockOptions lo;
  lo.key_bits = 16;
  const auto d = locking::lock_dmux(nl, lo);
  attacks::SatAttackOptions opts;
  opts.max_iterations = 0;
  const auto r = attacks::sat_attack(d.netlist, attacks::make_simulation_oracle(nl, d.netlist),
                                     opts);
  EXPECT_FALSE(r.success);
}

TEST(SatAttack, ThrowsWithoutKeyInputs) {
  const Netlist nl = attack_circuit(13);
  EXPECT_THROW(
      attacks::sat_attack(nl, [](const std::vector<bool>& x) { return x; }),
      netlist::NetlistError);
}

TEST(SimulationOracle, MatchesOriginalOutputs) {
  const Netlist nl = attack_circuit(15);
  locking::MuxLockOptions lo;
  lo.key_bits = 8;
  const auto d = locking::lock_dmux(nl, lo);
  const auto oracle = attacks::make_simulation_oracle(nl, d.netlist);
  const sim::Simulator simulator(nl);
  std::mt19937_64 rng(3);
  for (int t = 0; t < 16; ++t) {
    std::vector<bool> x;
    for (std::size_t i = 0; i < nl.inputs().size(); ++i) x.push_back((rng() & 1) != 0);
    EXPECT_EQ(oracle(x), simulator.run_single(x));
  }
}

}  // namespace
}  // namespace muxlink
