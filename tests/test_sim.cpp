// Unit + property tests for the bit-parallel simulator and Hamming-distance
// machinery.
#include <gtest/gtest.h>

#include <array>

#include "netlist/bench_io.h"
#include "sim/simulator.h"

namespace muxlink::sim {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::parse_bench;

// --- eval_gate truth tables ---------------------------------------------------

TEST(EvalGate, TwoInputTruthTables) {
  // Patterns: bit0 = (a=0,b=0), bit1 = (1,0), bit2 = (0,1), bit3 = (1,1).
  const Word pa = 0b1010;  // a: 0,1,0,1
  const Word pb = 0b1100;  // b: 0,0,1,1
  const std::array<Word, 2> in{pa, pb};
  EXPECT_EQ(eval_gate(GateType::kAnd, in) & 0xF, 0b1000u);
  EXPECT_EQ(eval_gate(GateType::kNand, in) & 0xF, 0b0111u);
  EXPECT_EQ(eval_gate(GateType::kOr, in) & 0xF, 0b1110u);
  EXPECT_EQ(eval_gate(GateType::kNor, in) & 0xF, 0b0001u);
  EXPECT_EQ(eval_gate(GateType::kXor, in) & 0xF, 0b0110u);
  EXPECT_EQ(eval_gate(GateType::kXnor, in) & 0xF, 0b1001u);
}

TEST(EvalGate, UnaryAndConstants) {
  const std::array<Word, 1> in{0b01u};
  EXPECT_EQ(eval_gate(GateType::kBuf, in) & 0b11, 0b01u);
  EXPECT_EQ(eval_gate(GateType::kNot, in) & 0b11, 0b10u);
  EXPECT_EQ(eval_gate(GateType::kConst0, {}), Word{0});
  EXPECT_EQ(eval_gate(GateType::kConst1, {}), ~Word{0});
}

TEST(EvalGate, MuxSelectsBySelLine) {
  // MUX(sel, a, b): sel=0 -> a.
  const Word sel = 0b1100;
  const Word a = 0b1010;
  const Word b = 0b0110;
  const std::array<Word, 3> in{sel, a, b};
  // Bits 0-1 (sel=0) come from a (0b10), bits 2-3 (sel=1) from b (0b01).
  EXPECT_EQ(eval_gate(GateType::kMux, in) & 0xF, 0b0110u);
}

TEST(EvalGate, MuxBitwiseDefinition) {
  const Word sel = 0xF0F0F0F0F0F0F0F0ull;
  const Word a = 0x1234567890ABCDEFull;
  const Word b = 0xFEDCBA0987654321ull;
  const std::array<Word, 3> in{sel, a, b};
  EXPECT_EQ(eval_gate(GateType::kMux, in), (~sel & a) | (sel & b));
}

TEST(EvalGate, MultiInputGatesFold) {
  const std::array<Word, 3> in{0b1110, 0b1101, 0b1011};
  EXPECT_EQ(eval_gate(GateType::kAnd, in) & 0xF, 0b1000u);
  EXPECT_EQ(eval_gate(GateType::kOr, in) & 0xF, 0b1111u);
  EXPECT_EQ(eval_gate(GateType::kXor, in) & 0xF, (0b1110u ^ 0b1101u ^ 0b1011u));
}

TEST(EvalGate, XorFoldMatchesPairwise) {
  const std::array<Word, 3> in{0xAAAA, 0xCCCC, 0xF0F0};
  EXPECT_EQ(eval_gate(GateType::kXor, in), 0xAAAAull ^ 0xCCCCull ^ 0xF0F0ull);
  EXPECT_EQ(eval_gate(GateType::kXnor, in), ~(0xAAAAull ^ 0xCCCCull ^ 0xF0F0ull));
}

// --- Simulator ------------------------------------------------------------------

TEST(Simulator, EvaluatesC17SinglePatterns) {
  const Netlist nl = parse_bench(R"(
INPUT(i1)
INPUT(i2)
INPUT(i3)
INPUT(i6)
INPUT(i7)
OUTPUT(o22)
OUTPUT(o23)
n10 = NAND(i1, i3)
n11 = NAND(i3, i6)
n16 = NAND(i2, n11)
n19 = NAND(n11, i7)
o22 = NAND(n10, n16)
o23 = NAND(n16, n19)
)", "c17");
  const Simulator sim(nl);
  // Reference model evaluated by hand for two vectors.
  {
    const std::array<bool, 5> in{false, false, false, false, false};
    const auto out = sim.run_single(in);
    // n10=1, n11=1, n16=1, n19=1, o22=NAND(1,1)=0, o23=0.
    EXPECT_FALSE(out[0]);
    EXPECT_FALSE(out[1]);
  }
  {
    const std::array<bool, 5> in{true, true, true, true, true};
    const auto out = sim.run_single(in);
    // n10=0, n11=0, n16=1, n19=1, o22=1, o23=0.
    EXPECT_TRUE(out[0]);
    EXPECT_FALSE(out[1]);
  }
}

TEST(Simulator, BitParallelMatchesSingle) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(y)
OUTPUT(z)
t1 = XOR(a, b)
t2 = AND(b, c)
y = OR(t1, t2)
z = MUX(a, t1, t2)
)");
  const Simulator sim(nl);
  PatternGenerator gen(7);
  const auto block = gen.next_block(3);
  const auto words = sim.run(block);
  const auto outs = sim.output_words(words);
  for (int bit = 0; bit < kWordBits; ++bit) {
    const std::array<bool, 3> single{(block[0] >> bit & 1) != 0, (block[1] >> bit & 1) != 0,
                                     (block[2] >> bit & 1) != 0};
    const auto sout = sim.run_single(single);
    for (std::size_t o = 0; o < sout.size(); ++o) {
      EXPECT_EQ(sout[o], ((outs[o] >> bit) & 1) != 0) << "bit " << bit << " output " << o;
    }
  }
}

TEST(Simulator, RejectsWrongInputCount) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  const Simulator sim(nl);
  const std::array<Word, 2> too_many{0, 0};
  EXPECT_THROW(sim.run(too_many), std::invalid_argument);
}

TEST(Simulator, ConstantsAndBufChains) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
c = CONST1()
b1 = BUF(a)
b2 = BUF(b1)
y = AND(b2, c)
)");
  const Simulator sim(nl);
  const std::array<Word, 1> in{0xDEADBEEFull};
  const auto words = sim.run(in);
  EXPECT_EQ(words[nl.find("y")], 0xDEADBEEFull);
}

TEST(PatternGenerator, IsDeterministicPerSeed) {
  PatternGenerator g1(42), g2(42), g3(43);
  const auto b1 = g1.next_block(4);
  const auto b2 = g2.next_block(4);
  const auto b3 = g3.next_block(4);
  EXPECT_EQ(b1, b2);
  EXPECT_NE(b1, b3);
}

// --- Hamming distance / equivalence ----------------------------------------------

constexpr const char* kXorText = R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = XOR(a, b)
)";

TEST(Hamming, IdenticalDesignsHaveZeroHD) {
  const Netlist a = parse_bench(kXorText, "a");
  const Netlist b = parse_bench(kXorText, "b");
  EXPECT_DOUBLE_EQ(hamming_distance_percent(a, b, {.num_patterns = 1000}), 0.0);
  EXPECT_TRUE(functionally_equivalent(a, b, {.num_patterns = 1000}));
}

TEST(Hamming, InvertedOutputHasFullHD) {
  const Netlist a = parse_bench(kXorText, "a");
  const Netlist b = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XNOR(a, b)\n", "b");
  EXPECT_DOUBLE_EQ(hamming_distance_percent(a, b, {.num_patterns = 640}), 100.0);
  EXPECT_FALSE(functionally_equivalent(a, b, {.num_patterns = 640}));
}

TEST(Hamming, IndependentOutputsNearFifty) {
  // y=a vs y=b on random patterns differ ~50% of the time.
  const Netlist a = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = BUF(a)\n", "a");
  const Netlist b = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = BUF(b)\n", "b");
  const double hd = hamming_distance_percent(a, b, {.num_patterns = 100000});
  EXPECT_NEAR(hd, 50.0, 1.5);
}

TEST(Hamming, RespectsNonMultipleOf64PatternCounts) {
  const Netlist a = parse_bench(kXorText, "a");
  const Netlist b = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = XNOR(a, b)\n", "b");
  EXPECT_DOUBLE_EQ(hamming_distance_percent(a, b, {.num_patterns = 7}), 100.0);
}

TEST(Hamming, ExtraKeyInputsAreDriven) {
  // b is "locked": y = XOR(a, k). With k=0 it matches y=a; with k=1 inverted.
  const Netlist a = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "a");
  const Netlist locked =
      parse_bench("INPUT(a)\nINPUT(keyinput0)\nOUTPUT(y)\ny = XOR(a, keyinput0)\n", "locked");
  HammingOptions k0;
  k0.num_patterns = 640;
  k0.extra_inputs_b = {{"keyinput0", false}};
  EXPECT_DOUBLE_EQ(hamming_distance_percent(a, locked, k0), 0.0);
  HammingOptions k1 = k0;
  k1.extra_inputs_b = {{"keyinput0", true}};
  EXPECT_DOUBLE_EQ(hamming_distance_percent(a, locked, k1), 100.0);
  // Missing extra inputs default to 0.
  EXPECT_TRUE(functionally_equivalent(a, locked, {.num_patterns = 640}));
}

TEST(Hamming, RejectsMismatchedInterfaces) {
  const Netlist a = parse_bench(kXorText, "a");
  const Netlist fewer = parse_bench("INPUT(a)\nOUTPUT(y)\ny = BUF(a)\n", "fewer");
  EXPECT_THROW(hamming_distance_percent(a, fewer), std::invalid_argument);
  const Netlist renamed =
      parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(q)\nq = XOR(a, b)\n", "renamed");
  EXPECT_THROW(hamming_distance_percent(a, renamed), std::invalid_argument);
}

TEST(Hamming, IsDeterministicForFixedSeed) {
  const Netlist a = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = BUF(a)\n", "a");
  const Netlist b = parse_bench("INPUT(a)\nINPUT(b)\nOUTPUT(y)\ny = AND(a, b)\n", "b");
  const double h1 = hamming_distance_percent(a, b, {.num_patterns = 6400, .seed = 9});
  const double h2 = hamming_distance_percent(a, b, {.num_patterns = 6400, .seed = 9});
  EXPECT_DOUBLE_EQ(h1, h2);
}

// Property sweep: for random pattern blocks, De Morgan holds gate-for-gate.
class DeMorganProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DeMorganProperty, NandEqualsOrOfComplements) {
  PatternGenerator gen(GetParam());
  const auto block = gen.next_block(2);
  const std::array<Word, 2> in{block[0], block[1]};
  const std::array<Word, 2> inv{~block[0], ~block[1]};
  EXPECT_EQ(eval_gate(GateType::kNand, in), eval_gate(GateType::kOr, inv));
  EXPECT_EQ(eval_gate(GateType::kNor, in), eval_gate(GateType::kAnd, inv));
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeMorganProperty, ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace muxlink::sim
