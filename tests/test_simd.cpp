// Equivalence and dispatch contract of the SIMD kernel layer (DESIGN.md §10).
//
// Two kernel classes, asserted per kernel against the scalar oracle table:
//   * bit-identical — propagate, propagate_transpose, tanh_backward_inplace,
//     add, scale, relu_dropout_backward, adam_update: per-lane scalar op
//     order, no FMA, so the AVX2 table must match the scalar table bit for
//     bit on every input;
//   * tolerance-equivalent — matmul, matmul_at_b_accum, matmul_a_bt,
//     dot_acc, axpy, sumsq_acc, tanh, sigmoid: lane reassociation / FMA /
//     polynomial exp change low-order bits only.
//
// Shapes are deliberately odd/prime so every padded row has live pad lanes
// and every remainder loop in the AVX2 TU runs. On hosts without AVX2+FMA
// the equivalence suite skips (there is nothing to compare); the dispatch
// and override tests still run.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <random>
#include <vector>

#include "circuitgen/generator.h"
#include "common/cpu_features.h"
#include "common/thread_pool.h"
#include "gnn/encoding.h"
#include "gnn/simd.h"
#include "gnn/trainer.h"
#include "graph/circuit_graph.h"
#include "graph/sampling.h"
#include "graph/subgraph.h"

namespace muxlink {
namespace {

// Restores the session's dispatch mode so one test can't leak a forced
// table into the rest of the binary.
struct ModeGuard {
  ~ModeGuard() { common::set_simd_mode(common::SimdMode::kAuto); }
};

gnn::Matrix random_matrix(int r, int c, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  gnn::Matrix m(r, c);
  for (int i = 0; i < r; ++i)
    for (int j = 0; j < c; ++j) m.at(i, j) = u(rng);
  return m;
}

gnn::AlignedVec random_vec(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  gnn::AlignedVec v(n);
  for (double& x : v) x = u(rng);
  return v;
}

void expect_bits_equal(double a, double b, const char* what, std::size_t i) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << " differs at element " << i << ": " << a << " vs " << b;
}

void expect_close(double a, double b, const char* what, std::size_t i) {
  const double tol = 1e-10 * std::max(1.0, std::abs(a));
  EXPECT_NEAR(a, b, tol) << what << " at element " << i;
}

void expect_matrices(const gnn::Matrix& ref, const gnn::Matrix& got, bool bit_identical,
                     const char* what) {
  ASSERT_EQ(ref.rows, got.rows) << what;
  ASSERT_EQ(ref.cols, got.cols) << what;
  for (int i = 0; i < ref.rows; ++i) {
    for (int j = 0; j < ref.cols; ++j) {
      const std::size_t flat = static_cast<std::size_t>(i) * ref.cols + j;
      if (bit_identical) {
        expect_bits_equal(ref.at(i, j), got.at(i, j), what, flat);
      } else {
        expect_close(ref.at(i, j), got.at(i, j), what, flat);
      }
    }
    // Pads-are-zero invariant: vector kernels may read pads but must only
    // ever write zeros there.
    for (int j = got.cols; j < got.ld; ++j) {
      EXPECT_EQ(got.row(i)[j], 0.0) << what << " wrote a pad lane, row " << i;
    }
  }
}

// Odd/prime matmul shapes (m, k, n): every row of every operand has live pad
// lanes except the deliberately lane-aligned last entry.
constexpr int kShapes[][3] = {
    {1, 1, 1}, {3, 5, 7}, {5, 3, 2}, {7, 13, 11}, {17, 7, 29}, {23, 19, 1}, {64, 48, 32},
};
constexpr std::size_t kVecLens[] = {1, 2, 3, 5, 7, 16, 17, 31, 257};

class SimdEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    avx2_ = gnn::avx2_kernels();
    if (avx2_ == nullptr) {
      GTEST_SKIP() << "host or build lacks AVX2+FMA; nothing to compare";
    }
  }
  const gnn::KernelTable& sc() { return gnn::scalar_kernels(); }
  const gnn::KernelTable* avx2_ = nullptr;
  std::mt19937_64 rng_{20260808};
};

TEST_F(SimdEquivalence, MatmulToleranceEquivalent) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(s[0], s[1], rng_);
    const auto b = random_matrix(s[1], s[2], rng_);
    gnn::Matrix ref, got;
    sc().matmul(a, b, ref);
    avx2_->matmul(a, b, got);
    expect_matrices(ref, got, /*bit_identical=*/false, "matmul");
  }
}

TEST_F(SimdEquivalence, MatmulAtBAccumToleranceEquivalent) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(s[0], s[1], rng_);
    const auto b = random_matrix(s[0], s[2], rng_);
    const auto init = random_matrix(s[1], s[2], rng_);
    gnn::Matrix ref = init, got = init;
    sc().matmul_at_b_accum(a, b, ref);
    avx2_->matmul_at_b_accum(a, b, got);
    expect_matrices(ref, got, /*bit_identical=*/false, "matmul_at_b_accum");
  }
}

TEST_F(SimdEquivalence, MatmulABtToleranceEquivalent) {
  for (const auto& s : kShapes) {
    const auto a = random_matrix(s[0], s[1], rng_);
    const auto b = random_matrix(s[2], s[1], rng_);
    gnn::Matrix ref, got;
    sc().matmul_a_bt(a, b, ref);
    avx2_->matmul_a_bt(a, b, got);
    expect_matrices(ref, got, /*bit_identical=*/false, "matmul_a_bt");
  }
}

TEST_F(SimdEquivalence, PropagateBitIdentical) {
  // Real encoded subgraphs so the CSR path sees genuine degree structure.
  circuitgen::CircuitSpec spec;
  spec.seed = 5;
  spec.num_gates = 120;
  spec.num_inputs = 10;
  spec.num_outputs = 5;
  const auto nl = circuitgen::generate(spec);
  const auto g = graph::build_circuit_graph(nl);
  const auto links = graph::sample_links(g, {}, {.max_links = 6, .seed = 3});
  ASSERT_FALSE(links.empty());
  graph::SubgraphOptions sopts;
  sopts.hops = 2;
  for (const auto& ls : links) {
    const auto sample = gnn::encode_subgraph(
        graph::extract_enclosing_subgraph(g, ls.link, sopts), sopts.hops, 1);
    // 7 channels: odd width, live pad lanes in h and both outputs.
    const auto h = random_matrix(sample.x.rows, 7, rng_);
    gnn::Matrix ref, got;
    sc().propagate(sample, h, ref);
    avx2_->propagate(sample, h, got);
    expect_matrices(ref, got, /*bit_identical=*/true, "propagate");
    sc().propagate_transpose(sample, h, ref);
    avx2_->propagate_transpose(sample, h, got);
    expect_matrices(ref, got, /*bit_identical=*/true, "propagate_transpose");
  }
}

TEST_F(SimdEquivalence, ElementwiseLoops) {
  for (const std::size_t n : kVecLens) {
    const auto src = random_vec(n, rng_);
    const auto other = random_vec(n, rng_);

    {  // tanh: tolerance (vector polynomial exp).
      gnn::AlignedVec ref = src, got = src;
      sc().tanh_inplace(ref.data(), n);
      avx2_->tanh_inplace(got.data(), n);
      for (std::size_t i = 0; i < n; ++i) expect_close(ref[i], got[i], "tanh", i);
    }
    {  // tanh with arguments across the small/general/saturated paths.
      gnn::AlignedVec ref(n), got(n);
      std::uniform_real_distribution<double> wide(-25.0, 25.0);
      for (std::size_t i = 0; i < n; ++i) ref[i] = got[i] = wide(rng_);
      sc().tanh_inplace(ref.data(), n);
      avx2_->tanh_inplace(got.data(), n);
      for (std::size_t i = 0; i < n; ++i) expect_close(ref[i], got[i], "tanh(wide)", i);
    }
    {  // sigmoid: tolerance.
      gnn::AlignedVec ref = src, got = src;
      sc().sigmoid_inplace(ref.data(), n);
      avx2_->sigmoid_inplace(got.data(), n);
      for (std::size_t i = 0; i < n; ++i) expect_close(ref[i], got[i], "sigmoid", i);
    }
    {  // tanh backward: bit-identical.
      gnn::AlignedVec ref = src, got = src;
      sc().tanh_backward_inplace(ref.data(), other.data(), n);
      avx2_->tanh_backward_inplace(got.data(), other.data(), n);
      for (std::size_t i = 0; i < n; ++i) expect_bits_equal(ref[i], got[i], "tanh_backward", i);
    }
    {  // dot_acc: tolerance; the init chaining must be honored by both.
      const double ref = sc().dot_acc(0.25, src.data(), other.data(), n);
      const double got = avx2_->dot_acc(0.25, src.data(), other.data(), n);
      expect_close(ref, got, "dot_acc", 0);
    }
    {  // axpy: tolerance (FMA in the vector body).
      gnn::AlignedVec ref = other, got = other;
      sc().axpy(0.37, src.data(), ref.data(), n);
      avx2_->axpy(0.37, src.data(), got.data(), n);
      for (std::size_t i = 0; i < n; ++i) expect_close(ref[i], got[i], "axpy", i);
    }
    {  // add: bit-identical.
      gnn::AlignedVec ref = other, got = other;
      sc().add(ref.data(), src.data(), n);
      avx2_->add(got.data(), src.data(), n);
      for (std::size_t i = 0; i < n; ++i) expect_bits_equal(ref[i], got[i], "add", i);
    }
    {  // scale: bit-identical.
      gnn::AlignedVec ref = src, got = src;
      sc().scale(ref.data(), 1.0 / 3.0, n);
      avx2_->scale(got.data(), 1.0 / 3.0, n);
      for (std::size_t i = 0; i < n; ++i) expect_bits_equal(ref[i], got[i], "scale", i);
    }
    {  // sumsq_acc: tolerance.
      const double ref = sc().sumsq_acc(0.5, src.data(), n);
      const double got = avx2_->sumsq_acc(0.5, src.data(), n);
      expect_close(ref, got, "sumsq_acc", 0);
    }
    {  // relu' + dropout: bit-identical (mask-select, no arithmetic change).
      gnn::AlignedVec mask(n);
      std::bernoulli_distribution keep(0.5);
      for (std::size_t i = 0; i < n; ++i) mask[i] = keep(rng_) ? 2.0 : 0.0;
      gnn::AlignedVec ref = src, got = src;
      sc().relu_dropout_backward(ref.data(), other.data(), mask.data(), n);
      avx2_->relu_dropout_backward(got.data(), other.data(), mask.data(), n);
      for (std::size_t i = 0; i < n; ++i)
        expect_bits_equal(ref[i], got[i], "relu_dropout_backward", i);
    }
    {  // adam: bit-identical on all four tensors.
      gnn::AlignedVec w_r = src, g_r = other, m_r = random_vec(n, rng_), v_r(n);
      std::uniform_real_distribution<double> pos(0.0, 1.0);
      for (std::size_t i = 0; i < n; ++i) v_r[i] = pos(rng_);
      auto w_g = w_r, g_g = g_r, m_g = m_r, v_g = v_r;
      sc().adam_update(w_r.data(), g_r.data(), m_r.data(), v_r.data(), n, 1e-3, 0.9, 0.999,
                       0.125);
      avx2_->adam_update(w_g.data(), g_g.data(), m_g.data(), v_g.data(), n, 1e-3, 0.9, 0.999,
                         0.125);
      for (std::size_t i = 0; i < n; ++i) {
        expect_bits_equal(w_r[i], w_g[i], "adam w", i);
        expect_bits_equal(g_r[i], g_g[i], "adam g", i);
        expect_bits_equal(m_r[i], m_g[i], "adam m", i);
        expect_bits_equal(v_r[i], v_g[i], "adam v", i);
      }
    }
  }
}

TEST(SimdDispatch, ModeParsingRoundTrips) {
  using common::SimdMode;
  EXPECT_EQ(common::parse_simd_mode("auto"), SimdMode::kAuto);
  EXPECT_EQ(common::parse_simd_mode("avx2"), SimdMode::kAvx2);
  EXPECT_EQ(common::parse_simd_mode("scalar"), SimdMode::kScalar);
  for (const auto m : {SimdMode::kAuto, SimdMode::kAvx2, SimdMode::kScalar}) {
    EXPECT_EQ(common::parse_simd_mode(common::to_string(m)), m);
  }
  EXPECT_THROW(common::parse_simd_mode("sse2"), std::invalid_argument);
  EXPECT_THROW(common::parse_simd_mode(""), std::invalid_argument);
  EXPECT_THROW(common::parse_simd_mode("AVX2"), std::invalid_argument);
}

TEST(SimdDispatch, OverrideRoundTripsThroughDispatch) {
  ModeGuard guard;
  common::set_simd_mode(common::SimdMode::kScalar);
  EXPECT_EQ(common::simd_mode(), common::SimdMode::kScalar);
  EXPECT_STREQ(gnn::kernels().isa, "scalar");
  EXPECT_FALSE(gnn::kernels().vectorized);

  common::set_simd_mode(common::SimdMode::kAuto);
  EXPECT_EQ(common::simd_mode(), common::SimdMode::kAuto);
  if (gnn::avx2_kernels() != nullptr) {
    // auto resolves upward when the hardware allows it...
    EXPECT_STREQ(gnn::kernels().isa, "avx2");
    // ...and an explicit request round-trips too.
    common::set_simd_mode(common::SimdMode::kAvx2);
    EXPECT_EQ(common::simd_mode(), common::SimdMode::kAvx2);
    EXPECT_STREQ(gnn::kernels().isa, "avx2");
    EXPECT_TRUE(gnn::kernels().vectorized);
  } else {
    EXPECT_STREQ(gnn::kernels().isa, "scalar");
    // A forced avx2 request must fail loudly, never silently downgrade.
    EXPECT_THROW(common::set_simd_mode(common::SimdMode::kAvx2), std::runtime_error);
  }
}

TEST(SimdDispatch, CpuInfoJsonHasManifestFields) {
  const auto j = gnn::cpu_info_json();
  for (const char* key :
       {"simd_mode", "simd_isa", "avx2", "fma", "hardware_threads", "cache_line_bytes"}) {
    EXPECT_TRUE(j.contains(key)) << key;
  }
}

// Determinism of the vectorized configuration: with MUXLINK_SIMD=avx2 the
// trainer must be bit-identical across 1/2/8 threads and across repeats,
// exactly like the scalar contract in test_parallel_determinism.
TEST(SimdDeterminism, Avx2TrainingBitIdenticalAcrossThreadCounts) {
  if (gnn::avx2_kernels() == nullptr) {
    GTEST_SKIP() << "host or build lacks AVX2+FMA";
  }
  ModeGuard guard;
  common::set_simd_mode(common::SimdMode::kAvx2);

  circuitgen::CircuitSpec spec;
  spec.seed = 4;
  spec.num_gates = 120;
  spec.num_inputs = 12;
  spec.num_outputs = 6;
  const auto nl = circuitgen::generate(spec);
  const auto g = graph::build_circuit_graph(nl);
  const auto links = graph::sample_links(g, {}, {.max_links = 60, .seed = 3});
  graph::SubgraphOptions sopts;
  sopts.hops = 2;
  std::vector<gnn::GraphSample> data;
  for (const auto& ls : links) {
    data.push_back(gnn::encode_subgraph(graph::extract_enclosing_subgraph(g, ls.link, sopts),
                                        sopts.hops, ls.positive ? 1 : 0));
  }
  ASSERT_GT(data.size(), 15u);

  const auto train_at = [&](std::size_t threads) {
    common::set_num_threads(threads);
    gnn::DgcnnConfig cfg;
    cfg.conv_channels = {8, 8, 1};
    cfg.conv1d_channels1 = 4;
    cfg.conv1d_channels2 = 6;
    cfg.conv1d_kernel2 = 3;
    cfg.dense_units = 16;
    cfg.dropout = 0.5;
    cfg.sortpool_k = 10;
    cfg.learning_rate = 1e-3;
    cfg.seed = 11;
    gnn::Dgcnn model(gnn::feature_dim_for_hops(2), cfg);
    gnn::TrainOptions topts;
    topts.epochs = 5;
    topts.batch_size = 10;  // not a multiple of the 4-sample grad chunk
    topts.seed = 2;
    const auto report = gnn::train_link_predictor(model, data, topts);
    std::vector<double> preds;
    for (const auto& s : data) preds.push_back(model.predict(s));
    return std::make_pair(report, preds);
  };

  const auto t1 = train_at(1);
  const auto t1b = train_at(1);  // repeatability within the config
  const auto t2 = train_at(2);
  const auto t8 = train_at(8);
  common::set_num_threads(0);

  for (const auto* other : {&t1b, &t2, &t8}) {
    EXPECT_EQ(t1.first.best_epoch, other->first.best_epoch);
    EXPECT_EQ(t1.first.best_val_accuracy, other->first.best_val_accuracy);
    EXPECT_EQ(t1.first.final_train_loss, other->first.final_train_loss);
    ASSERT_EQ(t1.second.size(), other->second.size());
    for (std::size_t i = 0; i < t1.second.size(); ++i) {
      ASSERT_EQ(std::bit_cast<std::uint64_t>(t1.second[i]),
                std::bit_cast<std::uint64_t>(other->second[i]))
          << "prediction " << i;
    }
  }
}

}  // namespace
}  // namespace muxlink
