// Tests for the MLP substrate, the SnapShot-like locality-vector attack,
// TRLL locking, and the ANT/RNT learning-resilience harness (§II of the
// paper).
#include <gtest/gtest.h>

#include <cmath>

#include "attacks/metrics.h"
#include "attacks/snapshot.h"
#include "circuitgen/generator.h"
#include "eval/resilience_tests.h"
#include "gnn/mlp.h"
#include "locking/mux_lock.h"
#include "locking/trll.h"
#include "netlist/analysis.h"
#include "sim/simulator.h"

namespace muxlink {
namespace {

using locking::KeyBit;
using locking::LockedDesign;
using locking::MuxLockOptions;
using netlist::GateType;
using netlist::Netlist;

Netlist test_circuit(std::uint64_t seed = 1, std::size_t gates = 250) {
  circuitgen::CircuitSpec spec;
  spec.seed = seed;
  spec.num_gates = gates;
  spec.num_inputs = 16;
  spec.num_outputs = 8;
  return circuitgen::generate(spec);
}

// --- MLP -----------------------------------------------------------------------

TEST(Mlp, GradientsMatchFiniteDifferences) {
  gnn::MlpConfig cfg;
  cfg.hidden = {6, 4};
  cfg.dropout = 0.0;
  cfg.seed = 3;
  gnn::Mlp model(5, cfg);
  const std::vector<double> x{0.3, -0.7, 1.2, 0.0, 0.5};
  const int label = 1;

  model.zero_gradients();
  model.accumulate_gradients(x, label);
  const auto& analytic = model.gradients();
  const auto params = model.save_parameters();

  auto loss_of = [&](gnn::Mlp& m) {
    const double p1 = m.predict(x);
    return -std::log(std::max(label == 1 ? p1 : 1.0 - p1, 1e-12));
  };
  const double eps = 1e-6;
  std::size_t bad = 0, checked = 0;
  for (std::size_t t = 0; t < params.size(); ++t) {
    for (std::size_t e = 0; e < params[t].data.size(); ++e) {
      auto plus = params;
      auto minus = params;
      plus[t].data[e] += eps;
      minus[t].data[e] -= eps;
      gnn::Mlp mp(5, cfg), mm(5, cfg);
      mp.load_parameters(plus);
      mm.load_parameters(minus);
      const double numeric = (loss_of(mp) - loss_of(mm)) / (2 * eps);
      const double exact = analytic[t].data[e];
      ++checked;
      if (std::abs(numeric - exact) > 1e-5 * std::max({1.0, std::abs(numeric)})) ++bad;
    }
  }
  EXPECT_GT(checked, 50u);
  EXPECT_LE(bad, checked / 100);
}

TEST(Mlp, LearnsLinearlySeparableData) {
  gnn::MlpConfig cfg;
  cfg.hidden = {8};
  cfg.learning_rate = 5e-3;
  std::vector<gnn::MlpSample> data;
  std::mt19937_64 rng(1);
  std::uniform_real_distribution<double> unit(-1.0, 1.0);
  for (int i = 0; i < 200; ++i) {
    std::vector<double> x{unit(rng), unit(rng), unit(rng)};
    data.push_back({x, x[0] + 0.5 * x[1] > 0 ? 1 : 0});
  }
  gnn::Mlp model(3, cfg);
  gnn::MlpTrainOptions topts;
  topts.epochs = 60;
  const auto report = gnn::train_mlp(model, data, topts);
  EXPECT_GT(report.best_val_accuracy, 0.9);
  EXPECT_GT(gnn::evaluate_mlp_accuracy(model, data), 0.9);
}

TEST(Mlp, RejectsBadShapes) {
  gnn::MlpConfig cfg;
  EXPECT_THROW(gnn::Mlp(0, cfg), std::invalid_argument);
  cfg.hidden = {0};
  EXPECT_THROW(gnn::Mlp(4, cfg), std::invalid_argument);
  cfg = {};
  gnn::Mlp model(4, cfg);
  EXPECT_THROW(model.predict({1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(model.load_parameters({}), std::invalid_argument);
}

TEST(Mlp, DropoutOnlyAffectsTraining) {
  gnn::MlpConfig cfg;
  cfg.dropout = 0.5;
  gnn::Mlp model(4, cfg);
  const std::vector<double> x{1, 2, 3, 4};
  const double a = model.predict(x, /*training=*/false);
  const double b = model.predict(x, /*training=*/false);
  EXPECT_DOUBLE_EQ(a, b);
}

// --- locality vectors -------------------------------------------------------------

TEST(Snapshot, LocalityVectorHasFixedLength) {
  const Netlist nl = test_circuit(5);
  MuxLockOptions lo;
  lo.key_bits = 8;
  const LockedDesign d = locking::lock_dmux(nl, lo);
  attacks::SnapshotOptions opts;
  const auto v1 = attacks::locality_vector(d.netlist, d.key_gates[0].gate, opts);
  const auto v2 = attacks::locality_vector(d.netlist, d.key_gates[1].gate, opts);
  EXPECT_EQ(v1.size(), v2.size());
  // Root slot one-hot encodes the key gate itself (a MUX for D-MUX locking).
  EXPECT_DOUBLE_EQ(v1[static_cast<int>(GateType::kMux)], 1.0);
  for (double x : v1) {
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Snapshot, DistinctLocalitiesYieldDistinctVectors) {
  const Netlist nl = test_circuit(7);
  MuxLockOptions lo;
  lo.key_bits = 8;
  const LockedDesign d = locking::lock_dmux(nl, lo);
  attacks::SnapshotOptions opts;
  const auto v1 = attacks::locality_vector(d.netlist, d.key_gates[0].gate, opts);
  const auto v2 = attacks::locality_vector(d.netlist, d.key_gates[3].gate, opts);
  EXPECT_NE(v1, v2);
}

// --- SnapShot attack ---------------------------------------------------------------

TEST(Snapshot, BreaksPlainXorLocking) {
  // Without re-synthesis the XOR/XNOR gate type maps directly to the key
  // bit (Fig. 1 of the paper): a locality classifier must get ~100%.
  attacks::SnapshotAttack attack;
  MuxLockOptions lo;
  lo.key_bits = 24;
  for (std::uint64_t s = 0; s < 4; ++s) {
    lo.seed = s + 1;
    attack.add_training_design(locking::lock_xor(test_circuit(30 + s), lo));
  }
  attack.train();
  lo.seed = 9;
  const LockedDesign victim = locking::lock_xor(test_circuit(99), lo);
  const auto score = attacks::score_key(victim.key, attack.attack(victim.netlist));
  EXPECT_GT(score.kpa_percent(), 95.0);
  EXPECT_GT(score.decision_rate_percent(), 90.0);
}

TEST(Snapshot, ChanceOnDmux) {
  // The D-MUX design goal, verified with SnapShot in [10]: KPA ~ 50%.
  attacks::SnapshotAttack attack;
  MuxLockOptions lo;
  lo.key_bits = 24;
  for (std::uint64_t s = 0; s < 4; ++s) {
    lo.seed = s + 1;
    attack.add_training_design(locking::lock_dmux(test_circuit(40 + s), lo));
  }
  attack.train();
  lo.seed = 9;
  const LockedDesign victim = locking::lock_dmux(test_circuit(98), lo);
  const auto score = attacks::score_key(victim.key, attack.attack(victim.netlist));
  // Few decisions and/or chance-level accuracy.
  EXPECT_LT(score.accuracy_percent(), 70.0);
}

TEST(Snapshot, RequiresTraining) {
  attacks::SnapshotAttack attack;
  EXPECT_THROW(attack.train(), std::logic_error);
  const Netlist nl = test_circuit(3);
  MuxLockOptions lo;
  lo.key_bits = 4;
  const LockedDesign d = locking::lock_xor(nl, lo);
  EXPECT_THROW(attack.attack(d.netlist), std::logic_error);
}

// --- TRLL ---------------------------------------------------------------------------

TEST(Trll, CorrectKeyPreservesFunctionality) {
  const Netlist nl = test_circuit(11);
  MuxLockOptions lo;
  lo.key_bits = 24;
  lo.seed = 7;
  const LockedDesign d = locking::lock_trll(nl, lo);
  EXPECT_EQ(d.key.size(), 24u);
  sim::HammingOptions pins;
  pins.num_patterns = 2048;
  for (std::size_t i = 0; i < d.key.size(); ++i) {
    pins.extra_inputs_b.emplace_back(d.key_input_names[i], d.key[i] != 0);
  }
  EXPECT_TRUE(sim::functionally_equivalent(nl, d.netlist, pins));
}

TEST(Trll, UsesBothGateFlavorsForBothKeyValues) {
  const Netlist nl = test_circuit(13, 500);
  MuxLockOptions lo;
  lo.key_bits = 64;
  lo.seed = 3;
  const LockedDesign d = locking::lock_trll(nl, lo);
  // Count (gate type, key value) combinations over the key gates.
  int xor_k0 = 0, xor_k1 = 0, xnor_k0 = 0, xnor_k1 = 0;
  for (const auto& kg : d.key_gates) {
    const GateType t = d.netlist.gate(kg.gate).type;
    const bool k = d.key[kg.key_bit] != 0;
    if (t == GateType::kXor) (k ? xor_k1 : xor_k0)++;
    if (t == GateType::kXnor) (k ? xnor_k1 : xnor_k0)++;
  }
  // The defining TRLL property: no type <-> key mapping.
  EXPECT_GT(xor_k0, 0);
  EXPECT_GT(xor_k1, 0);
  EXPECT_GT(xnor_k0, 0);
  EXPECT_GT(xnor_k1, 0);
}

TEST(Trll, IsAcyclicAndValid) {
  const Netlist nl = test_circuit(17);
  MuxLockOptions lo;
  lo.key_bits = 16;
  const LockedDesign d = locking::lock_trll(nl, lo);
  EXPECT_FALSE(netlist::has_combinational_loop(d.netlist));
  EXPECT_NO_THROW(d.netlist.validate());
}

TEST(Trll, PartialLockingHonored) {
  const Netlist nl = test_circuit(19, 60);
  MuxLockOptions lo;
  lo.key_bits = 4096;
  EXPECT_THROW(locking::lock_trll(nl, lo), std::invalid_argument);
  lo.allow_partial = true;
  const LockedDesign d = locking::lock_trll(nl, lo);
  EXPECT_GT(d.key.size(), 0u);
  EXPECT_LT(d.key.size(), 4096u);
}

// --- ANT / RNT harness ----------------------------------------------------------------

TEST(ResilienceTests, XorLockingFailsBothTests) {
  eval::ResilienceTestOptions opts;
  opts.key_bits = 24;
  opts.train_designs = 6;
  opts.test_designs = 3;
  const auto locker = [](const Netlist& nl, const MuxLockOptions& lo) {
    return locking::lock_xor(nl, lo);
  };
  const auto result = eval::run_learning_resilience_tests(locker, opts);
  EXPECT_FALSE(result.passes_ant);
  EXPECT_FALSE(result.passes_rnt);
  EXPECT_GT(result.ant_forced_kpa, 75.0);
  EXPECT_GT(result.rnt_forced_kpa, 75.0);
}

TEST(ResilienceTests, TrllPassesRntButFailsAnt) {
  // §II-B: "Although TRLL does not rely on synthesis tools and passes RNT,
  // it fails ANT ... and reduces to a conventional XOR-based LL technique."
  eval::ResilienceTestOptions opts;
  opts.key_bits = 24;
  opts.train_designs = 6;
  opts.test_designs = 3;
  const auto locker = [](const Netlist& nl, const MuxLockOptions& lo) {
    return locking::lock_trll(nl, lo);
  };
  const auto result = eval::run_learning_resilience_tests(locker, opts);
  EXPECT_TRUE(result.passes_rnt) << "RNT forced KPA " << result.rnt_forced_kpa;
  EXPECT_FALSE(result.passes_ant) << "ANT forced KPA " << result.ant_forced_kpa;
}

TEST(ResilienceTests, DmuxPassesBothTests) {
  eval::ResilienceTestOptions opts;
  opts.key_bits = 24;
  opts.train_designs = 6;
  opts.test_designs = 3;
  const auto locker = [](const Netlist& nl, const MuxLockOptions& lo) {
    return locking::lock_dmux(nl, lo);
  };
  const auto result = eval::run_learning_resilience_tests(locker, opts);
  EXPECT_TRUE(result.passes_ant) << result.ant_forced_kpa;
  EXPECT_TRUE(result.passes_rnt) << result.rnt_forced_kpa;
  EXPECT_TRUE(result.learning_resilient());
}

}  // namespace
}  // namespace muxlink
