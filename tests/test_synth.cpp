// Tests for the light synthesis engine (constant propagation, sweeping, dead
// logic removal) and the feature extractor.
#include <gtest/gtest.h>

#include "circuitgen/generator.h"
#include "netlist/analysis.h"
#include "netlist/bench_io.h"
#include "sim/simulator.h"
#include "synth/features.h"
#include "synth/synthesis.h"

namespace muxlink::synth {
namespace {

using netlist::GateType;
using netlist::Netlist;
using netlist::parse_bench;

std::size_t type_count(const Netlist& nl, GateType t) {
  return netlist::compute_stats(nl).count_by_type[static_cast<int>(t)];
}

// --- cleanup: constant folding ------------------------------------------------

TEST(Cleanup, FoldsDominantConstants) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
zero = CONST0()
t = AND(a, zero)
y = OR(t, b)
)");
  const Netlist clean = cleanup(nl);
  // AND(a,0)=0; OR(0,b)=b; y is a buffer of b (kept to preserve the name).
  EXPECT_EQ(type_count(clean, GateType::kAnd), 0u);
  EXPECT_EQ(type_count(clean, GateType::kOr), 0u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 256}));
}

TEST(Cleanup, FoldsNeutralConstants) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
one = CONST1()
y = AND(a, b, one)
)");
  const Netlist clean = cleanup(nl);
  const auto y = clean.find("y");
  ASSERT_NE(y, netlist::kNullGate);
  EXPECT_EQ(clean.gate(y).type, GateType::kAnd);
  EXPECT_EQ(clean.gate(y).fanins.size(), 2u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 256}));
}

TEST(Cleanup, CollapsesFullyConstantCone) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
one = CONST1()
zero = CONST0()
t = NAND(one, zero)
y = XOR(t, one)
)");
  const Netlist clean = cleanup(nl);
  const auto y = clean.find("y");
  // NAND(1,0)=1; XOR(1,1)=0.
  EXPECT_EQ(clean.gate(y).type, GateType::kConst0);
}

TEST(Cleanup, SimplifiesNandToNot) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
one = CONST1()
y = NAND(a, one)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(clean.gate(clean.find("y")).type, GateType::kNot);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

TEST(Cleanup, XorParityAbsorption) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
one = CONST1()
zero = CONST0()
y = XOR(a, one, zero)
z = XNOR(a, b, one)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(clean.gate(clean.find("y")).type, GateType::kNot);   // XOR(a,1) = !a
  EXPECT_EQ(clean.gate(clean.find("z")).type, GateType::kXor);   // XNOR(a,b,1) = XOR(a,b)
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 256}));
}

TEST(Cleanup, MuxConstantSelect) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(z)
one = CONST1()
zero = CONST0()
y = MUX(zero, a, b)
z = MUX(one, a, b)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(type_count(clean, GateType::kMux), 0u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 256}));
}

TEST(Cleanup, MuxConstantDataBecomesSelectExpression) {
  const Netlist nl = parse_bench(R"(
INPUT(s)
OUTPUT(y)
OUTPUT(z)
one = CONST1()
zero = CONST0()
y = MUX(s, zero, one)
z = MUX(s, one, zero)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(type_count(clean, GateType::kMux), 0u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

TEST(Cleanup, MuxIdenticalBranchesCollapse) {
  const Netlist nl = parse_bench(R"(
INPUT(s)
INPUT(a)
OUTPUT(y)
y = MUX(s, a, a)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(type_count(clean, GateType::kMux), 0u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

TEST(Cleanup, DuplicateFaninsDeduplicate) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
y = AND(a, a, b)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(clean.gate(clean.find("y")).fanins.size(), 2u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

// --- cleanup: sweeping / dead logic --------------------------------------------

TEST(Cleanup, SweepsBufferChains) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
b1 = BUF(a)
b2 = BUF(b1)
b3 = BUF(b2)
y = NOT(b3)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(type_count(clean, GateType::kBuf), 0u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

TEST(Cleanup, CancelsDoubleInverters) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
i1 = NOT(a)
i2 = NOT(i1)
y = AND(i2, b)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(type_count(clean, GateType::kNot), 0u);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

TEST(Cleanup, RemovesDeadLogic) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
dead1 = AND(a, b)
dead2 = NOT(dead1)
y = OR(a, b)
)");
  const Netlist clean = cleanup(nl);
  EXPECT_EQ(clean.find("dead1"), netlist::kNullGate);
  EXPECT_EQ(clean.find("dead2"), netlist::kNullGate);
  // PIs always survive.
  EXPECT_EQ(clean.inputs().size(), 2u);
}

TEST(Cleanup, OptionsDisableStages) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
b1 = BUF(a)
dead = NOT(a)
y = BUF(b1)
)");
  CleanupOptions keep_all;
  keep_all.propagate_constants = false;
  keep_all.sweep_buffers = false;
  keep_all.remove_dead_logic = false;
  const Netlist clean = cleanup(nl, keep_all);
  EXPECT_EQ(type_count(clean, GateType::kBuf), 2u);
  EXPECT_NE(clean.find("dead"), netlist::kNullGate);
}

TEST(Cleanup, PreservesPrimaryOutputNames) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
OUTPUT(z)
one = CONST1()
y = AND(a, one)
z = BUF(y)
)");
  const Netlist clean = cleanup(nl);
  ASSERT_NE(clean.find("y"), netlist::kNullGate);
  ASSERT_NE(clean.find("z"), netlist::kNullGate);
  EXPECT_TRUE(clean.is_output(clean.find("y")));
  EXPECT_TRUE(clean.is_output(clean.find("z")));
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

TEST(Cleanup, OutputCollapsingOntoInputIsWrapped) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
y = BUF(a)
)");
  const Netlist clean = cleanup(nl);
  // `y` must still exist and `a` must still be an input named `a`.
  EXPECT_NE(clean.find("y"), netlist::kNullGate);
  EXPECT_EQ(clean.gate(clean.find("a")).type, GateType::kInput);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 128}));
}

// Property: cleanup preserves functionality on random circuits.
class CleanupEquivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CleanupEquivalence, RandomCircuitsStayEquivalent) {
  circuitgen::CircuitSpec spec;
  spec.seed = GetParam();
  spec.num_gates = 180;
  spec.num_inputs = 10;
  spec.num_outputs = 6;
  const Netlist nl = circuitgen::generate(spec);
  const Netlist clean = cleanup(nl);
  EXPECT_TRUE(sim::functionally_equivalent(nl, clean, {.num_patterns = 2048, .seed = GetParam()}));
  // Cleanup never grows the design.
  EXPECT_LE(netlist::compute_stats(clean).num_logic_gates,
            netlist::compute_stats(nl).num_logic_gates);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CleanupEquivalence,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// --- hardcode_input -------------------------------------------------------------

TEST(Hardcode, RemovesInputAndSpecializes) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(k)
OUTPUT(y)
y = XOR(a, k)
)");
  const Netlist k0 = hardcode_input(nl, "k", false);
  EXPECT_EQ(k0.inputs().size(), 1u);
  EXPECT_EQ(k0.find("k"), netlist::kNullGate);
  // XOR(a,0) = a: y is a buffer/alias of a.
  const sim::Simulator s(k0);
  const std::array<bool, 1> t{true};
  EXPECT_TRUE(s.run_single(t)[0]);

  const Netlist k1 = hardcode_input(nl, "k", true);
  const sim::Simulator s1(k1);
  EXPECT_FALSE(s1.run_single(t)[0]);
  EXPECT_EQ(type_count(k1, GateType::kNot), 1u);
}

TEST(Hardcode, MatchesSimulationOnRandomCircuit) {
  circuitgen::CircuitSpec spec;
  spec.seed = 5;
  spec.num_gates = 150;
  spec.num_inputs = 9;
  spec.num_outputs = 4;
  const Netlist nl = circuitgen::generate(spec);
  const std::string victim = nl.gate(nl.inputs()[3]).name;
  for (bool v : {false, true}) {
    const Netlist hc = hardcode_input(nl, victim, v);
    EXPECT_EQ(hc.inputs().size(), 8u);
    sim::HammingOptions opts;
    opts.num_patterns = 2048;
    // Compare hc (fewer inputs) against original with the victim pinned.
    opts.extra_inputs_b = {{victim, v}};
    EXPECT_DOUBLE_EQ(hamming_distance_percent(hc, nl, opts), 0.0);
  }
}

TEST(Hardcode, ThrowsOnNonInput) {
  const Netlist nl = parse_bench("INPUT(a)\nOUTPUT(y)\ny = NOT(a)\n");
  EXPECT_THROW(hardcode_input(nl, "y", true), netlist::NetlistError);
  EXPECT_THROW(hardcode_input(nl, "ghost", true), netlist::NetlistError);
}

// --- features -------------------------------------------------------------------

TEST(Features, GateAreaOrdering) {
  EXPECT_LT(gate_area(GateType::kNot, 1), gate_area(GateType::kXor, 2));
  EXPECT_LT(gate_area(GateType::kNand, 2), gate_area(GateType::kMux, 3));
  EXPECT_EQ(gate_area(GateType::kInput, 0), 0.0);
  // Wide gates cost more.
  EXPECT_GT(gate_area(GateType::kAnd, 4), gate_area(GateType::kAnd, 2));
}

TEST(Features, SignalProbabilitiesExactOnSmallCones) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
OUTPUT(n)
OUTPUT(x)
y = AND(a, b)
n = NOR(a, b)
x = XOR(a, b)
)");
  const auto p = signal_probabilities(nl);
  EXPECT_DOUBLE_EQ(p[nl.find("a")], 0.5);
  EXPECT_DOUBLE_EQ(p[nl.find("y")], 0.25);
  EXPECT_DOUBLE_EQ(p[nl.find("n")], 0.25);
  EXPECT_DOUBLE_EQ(p[nl.find("x")], 0.5);
}

TEST(Features, ConstantsPinProbabilities) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
OUTPUT(y)
one = CONST1()
y = AND(a, one)
)");
  const auto p = signal_probabilities(nl);
  EXPECT_DOUBLE_EQ(p[nl.find("one")], 1.0);
  EXPECT_DOUBLE_EQ(p[nl.find("y")], 0.5);
}

TEST(Features, ExtractCountsAreaPowerDepth) {
  const Netlist nl = parse_bench(R"(
INPUT(a)
INPUT(b)
OUTPUT(y)
t = NAND(a, b)
y = XOR(t, a)
)");
  const Features f = extract_features(nl);
  EXPECT_EQ(f.num_logic_gates, 2u);
  EXPECT_EQ(f.count_by_type[static_cast<int>(GateType::kNand)], 1u);
  EXPECT_EQ(f.count_by_type[static_cast<int>(GateType::kXor)], 1u);
  EXPECT_DOUBLE_EQ(f.area, gate_area(GateType::kNand, 2) + gate_area(GateType::kXor, 2));
  EXPECT_EQ(f.depth, 2);
  EXPECT_GT(f.switching_power, 0.0);
  // nets: a (2 sinks), b, t, y(PO).
  EXPECT_EQ(f.num_nets, 4u);
}

TEST(Features, VectorViewIsStable) {
  const Features f;
  EXPECT_EQ(f.to_vector().size(), Features::vector_names().size());
}

TEST(Features, CleanupReducesAreaAfterHardcoding) {
  // Hard-coding a key input through cleanup must not increase area.
  circuitgen::CircuitSpec spec;
  spec.seed = 17;
  spec.num_gates = 200;
  const Netlist nl = circuitgen::generate(spec);
  const Features before = extract_features(nl);
  const std::string victim = nl.gate(nl.inputs()[0]).name;
  const Features after = extract_features(hardcode_input(nl, victim, true));
  EXPECT_LE(after.area, before.area);
}

}  // namespace
}  // namespace muxlink::synth
