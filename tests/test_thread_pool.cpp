// Tests for the common thread pool: full index coverage, deterministic
// chunking, exception propagation, nested parallel_for (no deadlock), and a
// many-task stress loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace muxlink::common {
namespace {

TEST(ThreadPool, SetNumThreadsIsReflected) {
  set_num_threads(3);
  EXPECT_EQ(num_threads(), 3u);
  set_num_threads(1);
  EXPECT_EQ(num_threads(), 1u);
  set_num_threads(0);  // restore default
  EXPECT_GE(num_threads(), 1u);
}

TEST(ThreadPool, NumChunksFormula) {
  EXPECT_EQ(num_chunks(0, 4), 0u);
  EXPECT_EQ(num_chunks(1, 4), 1u);
  EXPECT_EQ(num_chunks(4, 4), 1u);
  EXPECT_EQ(num_chunks(5, 4), 2u);
  EXPECT_EQ(num_chunks(100, 7), 15u);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (std::size_t threads : {1u, 2u, 8u}) {
    set_num_threads(threads);
    const std::size_t n = 10000;
    std::vector<std::atomic<int>> hits(n);
    for (auto& h : hits) h.store(0);
    parallel_for(n, 7, [&](std::size_t begin, std::size_t end, std::size_t) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " at " << threads << " threads";
    }
  }
  set_num_threads(0);
}

TEST(ThreadPool, ChunkingIsIndependentOfThreadCount) {
  // The (begin, end, chunk) triples must be a function of (n, chunk) only.
  auto collect = [](std::size_t threads) {
    set_num_threads(threads);
    std::vector<std::pair<std::size_t, std::size_t>> ranges(num_chunks(103, 10));
    parallel_for(103, 10, [&](std::size_t begin, std::size_t end, std::size_t chunk) {
      ranges[chunk] = {begin, end};
    });
    return ranges;
  };
  const auto one = collect(1);
  const auto two = collect(2);
  const auto eight = collect(8);
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, eight);
  EXPECT_EQ(one.front(), (std::pair<std::size_t, std::size_t>{0, 10}));
  EXPECT_EQ(one.back(), (std::pair<std::size_t, std::size_t>{100, 103}));
  set_num_threads(0);
}

TEST(ThreadPool, ExceptionsPropagateAndPoolSurvives) {
  set_num_threads(4);
  EXPECT_THROW(parallel_for(100, 1,
                            [&](std::size_t begin, std::size_t, std::size_t) {
                              if (begin == 37) throw std::runtime_error("boom");
                            }),
               std::runtime_error);
  // The pool must still be usable after a failed loop.
  std::atomic<std::size_t> sum{0};
  parallel_for(100, 1, [&](std::size_t begin, std::size_t, std::size_t) { sum += begin; });
  EXPECT_EQ(sum.load(), 4950u);
  set_num_threads(0);
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  set_num_threads(4);
  std::vector<std::uint64_t> outer_sums(8, 0);
  parallel_for(8, 1, [&](std::size_t begin, std::size_t, std::size_t) {
    std::vector<std::uint64_t> inner(100, 0);
    parallel_for(100, 3, [&](std::size_t b, std::size_t e, std::size_t) {
      for (std::size_t i = b; i < e; ++i) inner[i] = i;
    });
    outer_sums[begin] = std::accumulate(inner.begin(), inner.end(), std::uint64_t{0});
  });
  for (std::uint64_t s : outer_sums) EXPECT_EQ(s, 4950u);
  set_num_threads(0);
}

TEST(ThreadPool, StressManyConsecutiveLoops) {
  set_num_threads(8);
  std::uint64_t expected = 0;
  std::atomic<std::uint64_t> total{0};
  for (int round = 0; round < 300; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round % 97);
    expected += n;
    parallel_for(n, 2, [&](std::size_t begin, std::size_t end, std::size_t) {
      total.fetch_add(end - begin, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), expected);
  set_num_threads(0);
}

}  // namespace
}  // namespace muxlink::common
