// Tests for the structural Verilog reader/writer.
#include <gtest/gtest.h>

#include "circuitgen/generator.h"
#include "circuitgen/suites.h"
#include "locking/mux_lock.h"
#include "netlist/analysis.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "sim/simulator.h"

namespace muxlink::netlist {
namespace {

TEST(VerilogIO, ParsesHandWrittenModule) {
  const Netlist nl = parse_verilog(R"(
// a tiny module
module adder_bit (a, b, cin, sum, cout);
  input a, b, cin;
  output sum, cout;
  wire axb, ab, cx;
  xor g0 (axb, a, b);
  xor g1 (sum, axb, cin);
  and g2 (ab, a, b);
  and g3 (cx, axb, cin);
  or  g4 (cout, ab, cx);
endmodule
)");
  EXPECT_EQ(nl.name(), "adder_bit");
  EXPECT_EQ(nl.inputs().size(), 3u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  const auto s = compute_stats(nl);
  EXPECT_EQ(s.num_logic_gates, 5u);
  // Functional spot-check: 1 + 1 + 0 = sum 0, carry 1.
  const sim::Simulator sim(nl);
  const std::vector<bool> in{true, true, false};
  const auto out = sim.run_single(in);
  EXPECT_FALSE(out[0]);  // sum
  EXPECT_TRUE(out[1]);   // cout
}

TEST(VerilogIO, HandlesCommentsAssignsAndConstants) {
  const Netlist nl = parse_verilog(R"(
module m (a, y, z);
  /* block
     comment */
  input a;
  output y, z;
  wire t;
  assign t = a;     // alias
  and g0 (y, t, 1'b1);
  or  g1 (z, a, 1'b0);
endmodule
)");
  const sim::Simulator sim(nl);
  EXPECT_TRUE(sim.run_single(std::vector<bool>{true})[0]);
  EXPECT_FALSE(sim.run_single(std::vector<bool>{false})[1]);
}

TEST(VerilogIO, RoundTripPreservesFunction) {
  circuitgen::CircuitSpec spec;
  spec.seed = 9;
  spec.num_gates = 180;
  spec.num_inputs = 10;
  spec.num_outputs = 5;
  const Netlist nl = circuitgen::generate(spec);
  const Netlist back = parse_verilog(write_verilog(nl));
  EXPECT_EQ(back.num_gates(), nl.num_gates());
  EXPECT_TRUE(sim::functionally_equivalent(nl, back, {.num_patterns = 1024}));
}

TEST(VerilogIO, RoundTripsLockedDesignsWithMuxes) {
  const Netlist nl = circuitgen::make_benchmark("c432");
  locking::MuxLockOptions opts;
  opts.key_bits = 16;
  const auto d = locking::lock_dmux(nl, opts);
  const Netlist back = parse_verilog(write_verilog(d.netlist));
  const auto s = compute_stats(back);
  EXPECT_EQ(s.count_by_type[static_cast<int>(GateType::kMux)],
            compute_stats(d.netlist).count_by_type[static_cast<int>(GateType::kMux)]);
  EXPECT_TRUE(sim::functionally_equivalent(d.netlist, back, {.num_patterns = 1024}));
}

TEST(VerilogIO, EscapesAwkwardNames) {
  // BENCH allows names like "1GAT(0)"-ish tokens; the writer must escape
  // anything that is not a plain Verilog identifier.
  Netlist nl("top");
  const auto a = nl.add_input("3");
  const auto g = nl.add_gate("n|odd", GateType::kNot, {a});
  nl.mark_output(g);
  const std::string text = write_verilog(nl);
  EXPECT_NE(text.find("\\3 "), std::string::npos);
  const Netlist back = parse_verilog(text);
  EXPECT_TRUE(back.contains("3"));
  EXPECT_TRUE(back.contains("n|odd"));
  EXPECT_TRUE(sim::functionally_equivalent(nl, back, {.num_patterns = 64}));
}

TEST(VerilogIO, BenchToVerilogToBench) {
  const Netlist c17 = circuitgen::make_c17();
  const Netlist via_verilog = parse_verilog(write_verilog(c17));
  EXPECT_TRUE(sim::functionally_equivalent(c17, via_verilog, {.num_patterns = 64}));
  const Netlist back_to_bench = parse_bench(write_bench(via_verilog), "c17");
  EXPECT_TRUE(sim::functionally_equivalent(c17, back_to_bench, {.num_patterns = 64}));
}

TEST(VerilogIO, ErrorsCarryLineNumbers) {
  try {
    parse_verilog("module m (a);\n  input a;\n  frobnicate g0 (a);\nendmodule\n");
    FAIL() << "expected VerilogParseError";
  } catch (const VerilogParseError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos) << e.what();
  }
}

TEST(VerilogIO, RejectsMalformedModules) {
  EXPECT_THROW(parse_verilog(""), VerilogParseError);
  EXPECT_THROW(parse_verilog("wire w;"), VerilogParseError);
  EXPECT_THROW(parse_verilog("module m (a); input a;"), VerilogParseError);  // no endmodule
  EXPECT_THROW(parse_verilog("module m; and g0 (y, ghost); endmodule"), VerilogParseError);
  EXPECT_THROW(parse_verilog("module m; and g0 (y); endmodule"), VerilogParseError);
}

TEST(VerilogIO, FileRoundTrip) {
  const Netlist nl = circuitgen::make_c17();
  const auto path = std::filesystem::temp_directory_path() / "muxlink_c17.v";
  write_verilog_file(nl, path);
  const Netlist back = read_verilog_file(path);
  EXPECT_TRUE(sim::functionally_equivalent(nl, back, {.num_patterns = 64}));
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace muxlink::netlist
