// Serving-layer suite (DESIGN.md §11): streaming CRC, MXZOO1 blob round
// trips (mmap and streaming-copy readers must agree bit for bit), registry
// key schema + concurrent inserts + LRU gc, the per-link score cache, the
// explicit tensor-layout version in the text model format, and the
// end-to-end zoo determinism contract (a zoo-served attack is bit-identical
// to the training run that populated the entry). The e2e cases train small
// models, so the suite is registered as a single heavy ctest entry.
#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "circuitgen/generator.h"
#include "common/atomic_file.h"
#include "common/crc32.h"
#include "common/json.h"
#include "gnn/dgcnn.h"
#include "gnn/serialize.h"
#include "locking/mux_lock.h"
#include "muxlink/attack.h"
#include "zoo/model_blob.h"
#include "zoo/registry.h"
#include "zoo/score_cache.h"

namespace muxlink {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Helpers

// Unique scratch directory per test, removed on destruction.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag) {
    path = fs::temp_directory_path() /
           ("muxlink-test-zoo-" + tag + "-" + std::to_string(::getpid()));
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

std::string slurp(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

void spew(const fs::path& p, const std::string& bytes) {
  std::ofstream os(p, std::ios::binary | std::ios::trunc);
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(os.good());
}

bool bit_equal(double a, double b) { return std::memcmp(&a, &b, sizeof a) == 0; }

// Bit-exact parameter comparison (== would conflate 0.0 and -0.0).
void expect_params_bit_equal(const std::vector<gnn::Matrix>& a,
                             const std::vector<gnn::Matrix>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].rows, b[i].rows);
    ASSERT_EQ(a[i].cols, b[i].cols);
    for (int r = 0; r < a[i].rows; ++r) {
      for (int c = 0; c < a[i].cols; ++c) {
        EXPECT_TRUE(bit_equal(a[i].at(r, c), b[i].at(r, c)))
            << "tensor " << i << " [" << r << "," << c << "]";
      }
    }
  }
}

// A small model with non-trivial weights and Adam moments.
gnn::Dgcnn small_model(std::uint64_t seed = 7) {
  gnn::DgcnnConfig cfg;
  cfg.conv_channels = {8, 8, 1};
  cfg.conv1d_channels1 = 4;
  cfg.conv1d_channels2 = 8;
  cfg.dense_units = 16;
  cfg.sortpool_k = 10;
  cfg.seed = seed;
  gnn::Dgcnn model(6, cfg);
  return model;
}

gnn::GraphSample ring_sample(int nodes = 12, int feature_dim = 6, std::uint64_t seed = 3) {
  gnn::GraphSample s;
  std::vector<std::vector<int>> adj(nodes);
  for (int i = 0; i < nodes; ++i) {
    adj[i] = {(i + 1) % nodes, (i + nodes - 1) % nodes};
  }
  s.set_adjacency(adj);
  s.x = gnn::Matrix(nodes, feature_dim);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int r = 0; r < nodes; ++r) {
    for (int c = 0; c < feature_dim; ++c) s.x.at(r, c) = u(rng);
  }
  s.label = 1;
  return s;
}

// One training step so the Adam moments are non-zero. Dropout comes from an
// explicit seed (the trainer's deterministic overload), so the step depends
// only on (parameters, moments, sample) — the internal RNG state, which the
// blob does not carry, stays out of the trajectory.
void take_one_step(gnn::Dgcnn& model, std::uint64_t dropout_seed = 99) {
  const auto s = ring_sample();
  auto grads = model.make_gradient_buffers();
  model.accumulate_gradients(s, grads, dropout_seed);
  model.add_gradients(grads);
  model.adam_step(1);
}

// ---------------------------------------------------------------------------
// Satellite 1: streaming CRC matches the one-shot API.

TEST(Crc32, KnownAnswer) {
  EXPECT_EQ(common::crc32("123456789"), 0xCBF43926u);
  EXPECT_EQ(common::crc32(""), 0u);
}

TEST(Crc32, StreamingMatchesOneShot) {
  std::string data(4099, '\0');
  std::mt19937_64 rng(11);
  for (char& c : data) c = static_cast<char>(rng());
  const std::uint32_t whole = common::crc32(data);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{256},
                            std::size_t{4096}, data.size()}) {
    common::Crc32 crc;
    for (std::size_t off = 0; off < data.size(); off += chunk) {
      crc.update(std::string_view(data).substr(off, chunk));
    }
    EXPECT_EQ(crc.value(), whole) << "chunk=" << chunk;
  }
}

TEST(Crc32, SeedChainingAndReset) {
  const std::string a = "hello, ";
  const std::string b = "zoo";
  EXPECT_EQ(common::crc32(b, common::crc32(a)), common::crc32(a + b));

  common::Crc32 crc;
  crc.update(a);
  crc.update(b.data(), b.size());
  EXPECT_EQ(crc.value(), common::crc32(a + b));
  crc.reset();
  EXPECT_EQ(crc.value(), 0u);
  crc.update("123456789");
  EXPECT_EQ(crc.value(), 0xCBF43926u);
}

// ---------------------------------------------------------------------------
// MXZOO1 blobs: round trip, mmap vs streaming copy, rejection paths.

class BlobTest : public ::testing::Test {
 protected:
  BlobTest() : dir_("blob") {}
  fs::path write_blob(const gnn::Dgcnn& model, bool with_optimizer,
                      const std::string& name = "m.mzb") {
    common::Json meta = common::Json::object();
    meta["test"] = std::string("yes");
    const std::string bytes = zoo::encode_model_blob(model, meta, with_optimizer);
    const fs::path p = dir_.path / name;
    spew(p, bytes);
    return p;
  }
  TempDir dir_;
};

TEST_F(BlobTest, MmapAndCopyReadersAgreeBitForBit) {
  auto model = small_model();
  take_one_step(model);
  const fs::path p = write_blob(model, /*with_optimizer=*/true);

  zoo::LoadOptions mapped_opts;
  auto mapped = zoo::load_model_blob(p, mapped_opts);
  EXPECT_TRUE(mapped.mapped);
  EXPECT_GT(mapped.bytes_mapped, 0u);

  zoo::LoadOptions copy_opts;
  copy_opts.force_copy = true;
  auto copied = zoo::load_model_blob(p, copy_opts);
  EXPECT_FALSE(copied.mapped);
  EXPECT_EQ(copied.bytes_mapped, 0u);

  expect_params_bit_equal(model.save_parameters(), mapped.model.save_parameters());
  expect_params_bit_equal(model.save_parameters(), copied.model.save_parameters());

  // Inference through the mapped views matches the owned copies exactly.
  const auto s = ring_sample();
  const double p_orig = model.predict(s, false);
  EXPECT_TRUE(bit_equal(p_orig, mapped.model.predict(s, false)));
  EXPECT_TRUE(bit_equal(p_orig, copied.model.predict(s, false)));

  EXPECT_EQ(mapped.meta["test"].as_string(), "yes");
}

TEST_F(BlobTest, MaterializeMakesMappedModelTrainable) {
  auto model = small_model();
  take_one_step(model);
  const fs::path p = write_blob(model, /*with_optimizer=*/true);

  zoo::LoadOptions opts;
  opts.with_optimizer = true;
  auto loaded = zoo::load_model_blob(p, opts);
  // Deep-copy the snapshot: save_parameters() of a mapped model returns
  // views, and materialize() releases the mapping they point into.
  auto before = loaded.model.save_parameters();
  for (auto& m : before) m.materialize();
  loaded.materialize();
  EXPECT_FALSE(loaded.mapped);
  expect_params_bit_equal(before, loaded.model.save_parameters());

  // Optimizer state survived: another identical step matches the original.
  take_one_step(model);
  take_one_step(loaded.model);
  expect_params_bit_equal(model.save_parameters(), loaded.model.save_parameters());
}

TEST_F(BlobTest, OptimizerRequestedButAbsentThrows) {
  const auto model = small_model();
  const fs::path p = write_blob(model, /*with_optimizer=*/false);
  EXPECT_NO_THROW(zoo::load_model_blob(p));
  zoo::LoadOptions opts;
  opts.with_optimizer = true;
  EXPECT_THROW(zoo::load_model_blob(p, opts), zoo::ZooError);
}

TEST_F(BlobTest, CorruptTruncatedAndForeignFilesThrow) {
  const auto model = small_model();
  const fs::path p = write_blob(model, /*with_optimizer=*/true);
  const std::string good = slurp(p);

  // Flipped tensor byte: CRC catches it.
  std::string corrupt = good;
  corrupt[corrupt.size() - 9] ^= 0x40;
  spew(dir_.path / "corrupt.mzb", corrupt);
  EXPECT_THROW(zoo::load_model_blob(dir_.path / "corrupt.mzb"), zoo::ZooError);

  // Truncation at several depths.
  for (std::size_t keep : {std::size_t{0}, std::size_t{7}, std::size_t{40},
                           good.size() / 2, good.size() - 1}) {
    spew(dir_.path / "trunc.mzb", good.substr(0, keep));
    EXPECT_THROW(zoo::load_model_blob(dir_.path / "trunc.mzb"), zoo::ZooError)
        << "keep=" << keep;
  }

  // Wrong magic.
  std::string foreign = good;
  foreign[0] = 'Y';
  spew(dir_.path / "foreign.mzb", foreign);
  EXPECT_THROW(zoo::load_model_blob(dir_.path / "foreign.mzb"), zoo::ZooError);

  EXPECT_THROW(zoo::load_model_blob(dir_.path / "missing.mzb"), zoo::ZooError);
}

TEST_F(BlobTest, UnknownLayoutVersionIsRejectedNotMisread) {
  const auto model = small_model();
  const fs::path p = write_blob(model, /*with_optimizer=*/false);
  std::string bytes = slurp(p);
  // layout_version is the u32 at offset 12 (magic 8 + header_version 4); it
  // is outside the payload CRC on purpose — the header check must fire.
  const std::uint32_t bogus = 7;
  std::memcpy(bytes.data() + 12, &bogus, sizeof bogus);
  spew(dir_.path / "layout.mzb", bytes);
  EXPECT_THROW(zoo::load_model_blob(dir_.path / "layout.mzb"), zoo::ZooError);
}

TEST_F(BlobTest, EnvVarForcesStreamingCopy) {
  const auto model = small_model();
  const fs::path p = write_blob(model, /*with_optimizer=*/false);
  ::setenv("MUXLINK_ZOO_MMAP", "0", 1);
  const auto loaded = zoo::load_model_blob(p);
  ::unsetenv("MUXLINK_ZOO_MMAP");
  EXPECT_FALSE(loaded.mapped);
  EXPECT_EQ(loaded.bytes_mapped, 0u);
  expect_params_bit_equal(model.save_parameters(), loaded.model.save_parameters());
}

TEST_F(BlobTest, ReadBlobMetaIsACheapProbe) {
  const auto model = small_model();
  const fs::path p = write_blob(model, /*with_optimizer=*/true);
  auto meta = zoo::read_blob_meta(p);
  EXPECT_EQ(meta["format"].as_string(), "muxlink-zoo-blob/v1");
  EXPECT_EQ(meta["test"].as_string(), "yes");
  EXPECT_THROW(zoo::read_blob_meta(dir_.path / "missing.mzb"), zoo::ZooError);
}

// ---------------------------------------------------------------------------
// Satellite 2: the text model format records its layout version.

TEST(SerializeLayout, TextFormatCarriesExplicitLogicalLayout) {
  const auto model = small_model();
  std::ostringstream os;
  gnn::save_model(model, os);
  const std::string text = os.str();
  EXPECT_NE(text.find("\nlayout 0\n"), std::string::npos);

  std::istringstream is(text);
  auto reloaded = gnn::load_model(is);
  expect_params_bit_equal(model.save_parameters(), reloaded.save_parameters());
}

TEST(SerializeLayout, LegacyFileWithoutLayoutLineStillLoads) {
  const auto model = small_model();
  std::ostringstream os;
  gnn::save_model(model, os);
  std::string text = os.str();

  // Rebuild the file as a pre-layout-field writer would have: drop the
  // layout line and re-seal the CRC trailer.
  const auto magic_end = text.find('\n') + 1;
  const auto crc_pos = text.rfind("crc32 ");
  std::string payload = text.substr(magic_end, crc_pos - magic_end);
  const std::string layout_line = "layout 0\n";
  ASSERT_EQ(payload.rfind(layout_line, 0), 0u);
  payload.erase(0, layout_line.size());
  char trailer[24];
  std::snprintf(trailer, sizeof trailer, "crc32 %08x\n", common::crc32(payload));
  std::istringstream is(text.substr(0, magic_end) + payload + trailer);
  auto reloaded = gnn::load_model(is);
  expect_params_bit_equal(model.save_parameters(), reloaded.save_parameters());
}

TEST(SerializeLayout, ForeignLayoutVersionIsRejected) {
  const auto model = small_model();
  std::ostringstream os;
  gnn::save_model(model, os);
  std::string text = os.str();

  const auto magic_end = text.find('\n') + 1;
  const auto crc_pos = text.rfind("crc32 ");
  std::string payload = text.substr(magic_end, crc_pos - magic_end);
  ASSERT_EQ(payload.rfind("layout 0\n", 0), 0u);
  payload.replace(0, 9, "layout 1\n");  // kLayoutPaddedSimd: text reader must balk
  char trailer[24];
  std::snprintf(trailer, sizeof trailer, "crc32 %08x\n", common::crc32(payload));
  std::istringstream is(text.substr(0, magic_end) + payload + trailer);
  EXPECT_THROW(gnn::load_model(is), gnn::ModelFormatError);
}

// ---------------------------------------------------------------------------
// Registry: key schema, LRU bookkeeping, concurrent inserts, gc.

TEST(Registry, KeySchemaIsStable) {
  zoo::ZooKey key;
  key.circuit_hash = 0xdeadbeefcafe0123ull;
  key.scheme = "dmux";
  key.hops = 3;
  key.feature_dim = 17;
  key.seed = 42;
  key.config_hash = 0x0123456789abcdefull;
  key.member = 2;
  EXPECT_EQ(key.str(),
            "cdeadbeefcafe0123-dmux-h3-f17-s42-t0123456789abcdef-m2");
  EXPECT_EQ(zoo::fnv1a64(""), zoo::kFnvOffset);
  EXPECT_EQ(zoo::hex64(0), "0000000000000000");
}

TEST(Registry, InsertFindPinAndList) {
  TempDir dir("registry");
  const zoo::Registry reg(dir.path / "zoo");
  EXPECT_FALSE(reg.contains("a"));
  EXPECT_FALSE(reg.find("a").has_value());

  reg.insert("a", "payload-a");
  reg.insert("b", "payload-b-longer");
  EXPECT_TRUE(reg.contains("a"));
  const auto found = reg.find("a");
  ASSERT_TRUE(found.has_value());
  EXPECT_EQ(slurp(*found), "payload-a");
  EXPECT_EQ(reg.total_bytes(), 9u + 16u);

  EXPECT_FALSE(reg.pinned("a"));
  reg.pin("a");
  EXPECT_TRUE(reg.pinned("a"));
  reg.unpin("a");
  EXPECT_FALSE(reg.pinned("a"));

  // find() bumps the entry to most-recently-used, so "b" lists first.
  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(reg.entry_path("a"), now - std::chrono::hours(2));
  fs::last_write_time(reg.entry_path("b"), now - std::chrono::hours(1));
  (void)reg.find("b");
  const auto entries = reg.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "a");
  EXPECT_EQ(entries[1].key, "b");
}

TEST(Registry, ConcurrentSameKeyInsertsNeverExposeATorApartialBlob) {
  TempDir dir("race");
  const zoo::Registry reg(dir.path / "zoo");
  constexpr int kThreads = 8;
  constexpr int kRounds = 40;

  // Each writer's payload is distinctive and self-describing; a reader must
  // only ever observe one writer's payload in full.
  std::vector<std::string> payloads;
  for (int t = 0; t < kThreads; ++t) {
    payloads.push_back(std::string(1024, static_cast<char>('A' + t)));
  }
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kRounds; ++i) reg.insert("hot", payloads[t]);
    });
  }
  for (auto& w : workers) w.join();

  const auto found = reg.find("hot");
  ASSERT_TRUE(found.has_value());
  const std::string got = slurp(*found);
  bool intact = false;
  for (const auto& p : payloads) intact |= (got == p);
  EXPECT_TRUE(intact) << "destination is not any single writer's payload";
  // The unique-temp-name contract: no stray temp should survive the joins
  // (every writer renamed its own staging file).
  for (const auto& e : fs::directory_iterator(dir.path / "zoo")) {
    EXPECT_EQ(e.path().string().find(".tmp."), std::string::npos)
        << "leftover temp " << e.path();
  }
}

TEST(Registry, GcEvictsStrictlyLruAndNeverPinned) {
  TempDir dir("gc");
  const zoo::Registry reg(dir.path / "zoo");
  const std::string kb(1024, 'x');
  reg.insert("old", kb);
  reg.insert("mid", kb);
  reg.insert("new", kb);
  // Each entry owns a score cache that must leave with it.
  common::atomic_write_file(reg.score_cache_path("old"), "scores-old");
  common::atomic_write_file(reg.score_cache_path("new"), "scores-new");
  // A stray temp from a crashed writer is swept too.
  spew(dir.path / "zoo" / "dead.mzb.tmp.999.1", "partial");

  const auto now = fs::file_time_type::clock::now();
  fs::last_write_time(reg.entry_path("old"), now - std::chrono::hours(3));
  fs::last_write_time(reg.entry_path("mid"), now - std::chrono::hours(2));
  fs::last_write_time(reg.entry_path("new"), now - std::chrono::hours(1));
  reg.pin("old");

  // Budget for one entry: "old" is LRU but pinned, so "mid" then "new" are
  // the eviction candidates; evicting "mid" alone satisfies the budget
  // (pinned bytes still count toward the kept total, so the budget must
  // cover old + new).
  const auto res = reg.gc(2 * 1024 + 64);
  ASSERT_EQ(res.evicted.size(), 1u);
  EXPECT_EQ(res.evicted[0], "mid");
  EXPECT_TRUE(reg.contains("old"));
  EXPECT_FALSE(reg.contains("mid"));
  EXPECT_TRUE(reg.contains("new"));
  EXPECT_FALSE(fs::exists(dir.path / "zoo" / "dead.mzb.tmp.999.1"));
  EXPECT_TRUE(fs::exists(reg.score_cache_path("old")));

  // Everything unpinned goes at budget 0; the pinned entry survives, score
  // cache and all.
  const auto res0 = reg.gc(0);
  ASSERT_EQ(res0.evicted.size(), 1u);
  EXPECT_EQ(res0.evicted[0], "new");
  EXPECT_FALSE(fs::exists(reg.score_cache_path("new")));
  EXPECT_TRUE(reg.contains("old"));
  EXPECT_GT(res0.bytes_kept, 0u);
}

TEST(Registry, ListAndGcOrderDeterministicUnderIdenticalMtimes) {
  TempDir dir("gc_ties");
  const zoo::Registry reg(dir.path / "zoo");
  const std::string kb(1024, 'x');
  // Insertion order is deliberately not key order.
  for (const char* k : {"delta", "alpha", "charlie", "bravo"}) reg.insert(k, kb);
  // Coarse filesystem timestamps (or a fast machine) can stamp every entry
  // with the same mtime; the LRU order must still be total.
  const auto stamp = fs::file_time_type::clock::now() - std::chrono::hours(1);
  for (const char* k : {"delta", "alpha", "charlie", "bravo"}) {
    fs::last_write_time(reg.entry_path(k), stamp);
  }

  const auto entries = reg.list();
  ASSERT_EQ(entries.size(), 4u);
  EXPECT_EQ(entries[0].key, "alpha");
  EXPECT_EQ(entries[1].key, "bravo");
  EXPECT_EQ(entries[2].key, "charlie");
  EXPECT_EQ(entries[3].key, "delta");

  // Eviction under the tie follows the same total order: two entries' worth
  // of budget evicts exactly the two lexicographically-smallest keys.
  const auto res = reg.gc(2 * 1024 + 64);
  ASSERT_EQ(res.evicted.size(), 2u);
  EXPECT_EQ(res.evicted[0], "alpha");
  EXPECT_EQ(res.evicted[1], "bravo");
  EXPECT_TRUE(reg.contains("charlie"));
  EXPECT_TRUE(reg.contains("delta"));
}

TEST(Registry, BumpCoalescingSkipsRepeatMtimeWritesInsideTheWindow) {
  TempDir dir("coalesce");
  const zoo::Registry reg(dir.path / "zoo");
  reg.insert("hot", "payload");
  const auto stale = fs::file_time_type::clock::now() - std::chrono::hours(2);

  ::setenv("MUXLINK_ZOO_BUMP_WINDOW_MS", "60000", 1);
  // The first find on a path always pays for the bump, window or not —
  // that keeps the strict-monotonicity contract intact.
  fs::last_write_time(reg.entry_path("hot"), stale);
  ASSERT_TRUE(reg.find("hot").has_value());
  EXPECT_GT(fs::last_write_time(reg.entry_path("hot")), stale);

  // Repeat hits inside the window are pure reads: the mtime we plant stays.
  fs::last_write_time(reg.entry_path("hot"), stale);
  for (int i = 0; i < 8; ++i) ASSERT_TRUE(reg.find("hot").has_value());
  EXPECT_EQ(fs::last_write_time(reg.entry_path("hot")), stale);

  // With the window off (the default), every find bumps again.
  ::unsetenv("MUXLINK_ZOO_BUMP_WINDOW_MS");
  ASSERT_TRUE(reg.find("hot").has_value());
  EXPECT_GT(fs::last_write_time(reg.entry_path("hot")), stale);
}

TEST(Registry, FindBumpIsStrictlyMonotonicEvenAgainstFutureMtimes) {
  TempDir dir("bump");
  const zoo::Registry reg(dir.path / "zoo");
  reg.insert("a", "payload");
  reg.insert("b", "payload");
  // Stamp both entries ahead of the wall clock (clock skew, restored
  // backups). A plain mtime := now would leave "a" ordered by the key
  // tie-break instead of as most-recently-used.
  const auto future = fs::file_time_type::clock::now() + std::chrono::hours(1);
  fs::last_write_time(reg.entry_path("a"), future);
  fs::last_write_time(reg.entry_path("b"), future);

  ASSERT_TRUE(reg.find("a").has_value());
  const auto entries = reg.list();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].key, "b") << "find() must leave the other entry older";
  EXPECT_EQ(entries[1].key, "a") << "found entry must become most-recently-used";
  EXPECT_GT(entries[1].last_used, entries[0].last_used);
}

// ---------------------------------------------------------------------------
// Per-link score cache: LRU semantics, bit-exact persistence, corrupt files.

TEST(ScoreCache, LruEvictionAndHitBumping) {
  zoo::ScoreCache cache(2);
  EXPECT_FALSE(cache.get(1).has_value());
  cache.put(1, 0.25);
  cache.put(2, 0.5);
  EXPECT_EQ(cache.get(1), 0.25);  // bumps 1 to MRU
  cache.put(3, 0.75);             // evicts 2, the LRU
  EXPECT_FALSE(cache.get(2).has_value());
  EXPECT_EQ(cache.get(1), 0.25);
  EXPECT_EQ(cache.get(3), 0.75);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 2u);

  // put of an existing key replaces the value in place.
  cache.put(1, 0.125);
  EXPECT_EQ(cache.get(1), 0.125);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(ScoreCache, CapacityZeroDisables) {
  zoo::ScoreCache cache(0);
  cache.put(1, 0.5);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(1).has_value());
}

TEST(ScoreCache, PersistenceIsBitExactAndPreservesLruOrder) {
  TempDir dir("scc");
  const fs::path p = dir.path / "c.msc";
  zoo::ScoreCache cache(8);
  // Values chosen so any decimal round-trip would betray itself.
  const double denormal = 5e-324;
  const double third = 1.0 / 3.0;
  cache.put(10, -0.0);
  cache.put(20, denormal);
  cache.put(30, third);
  (void)cache.get(10);  // 20 becomes the LRU
  cache.save(p);

  zoo::ScoreCache reloaded(3);
  ASSERT_TRUE(reloaded.load(p));
  EXPECT_EQ(reloaded.size(), 3u);
  ASSERT_TRUE(reloaded.get(10).has_value());
  EXPECT_TRUE(bit_equal(*reloaded.get(10), -0.0));
  EXPECT_TRUE(bit_equal(*reloaded.get(20), denormal));
  EXPECT_TRUE(bit_equal(*reloaded.get(30), third));

  // LRU order survived the round trip: a reloaded cache at capacity evicts
  // the same entry the original would have (20, before the gets above bump
  // it — reload fresh to check).
  zoo::ScoreCache order(3);
  ASSERT_TRUE(order.load(p));
  order.put(40, 1.0);  // one over capacity: 20 must go
  EXPECT_FALSE(order.get(20).has_value());
  EXPECT_TRUE(order.get(10).has_value());
}

TEST(ScoreCache, CorruptOrForeignFileLoadsAsEmpty) {
  TempDir dir("scc-bad");
  zoo::ScoreCache cache(4);

  EXPECT_FALSE(cache.load(dir.path / "missing.msc"));
  EXPECT_EQ(cache.size(), 0u);

  spew(dir.path / "garbage.msc", "not a score cache at all");
  EXPECT_FALSE(cache.load(dir.path / "garbage.msc"));
  EXPECT_EQ(cache.size(), 0u);

  // A valid file with one flipped payload byte: CRC rejects it.
  zoo::ScoreCache writer(4);
  writer.put(1, 0.5);
  writer.put(2, 0.75);
  writer.save(dir.path / "good.msc");
  std::string bytes = slurp(dir.path / "good.msc");
  bytes[bytes.size() / 2] ^= 0x01;
  spew(dir.path / "flipped.msc", bytes);
  EXPECT_FALSE(cache.load(dir.path / "flipped.msc"));
  EXPECT_EQ(cache.size(), 0u);

  // Truncation.
  spew(dir.path / "trunc.msc", slurp(dir.path / "good.msc").substr(0, 13));
  EXPECT_FALSE(cache.load(dir.path / "trunc.msc"));

  // And the good file still loads (the cache recovers after bad loads).
  EXPECT_TRUE(cache.load(dir.path / "good.msc"));
  EXPECT_EQ(cache.size(), 2u);
}

// ---------------------------------------------------------------------------
// End-to-end determinism contract: zoo-served, cache-served, copy-fallback,
// and warm-started runs against one small locked circuit.

void expect_same_attack_result(const core::MuxLinkResult& a, const core::MuxLinkResult& b,
                               const char* what) {
  ASSERT_EQ(a.key.size(), b.key.size()) << what;
  for (std::size_t i = 0; i < a.key.size(); ++i) EXPECT_EQ(a.key[i], b.key[i]) << what;
  ASSERT_EQ(a.likelihoods.size(), b.likelihoods.size()) << what;
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    EXPECT_TRUE(bit_equal(a.likelihoods[i].score_a, b.likelihoods[i].score_a))
        << what << " link " << i;
    EXPECT_TRUE(bit_equal(a.likelihoods[i].score_b, b.likelihoods[i].score_b))
        << what << " link " << i;
  }
}

TEST(ZooEndToEnd, ServedRunsAreBitIdenticalToTheTrainingRun) {
  netlist::Netlist original = [] {
    circuitgen::CircuitSpec spec;
    spec.seed = 5;
    spec.num_gates = 160;
    spec.num_inputs = 12;
    spec.num_outputs = 6;
    return circuitgen::generate(spec);
  }();
  locking::MuxLockOptions lo;
  lo.key_bits = 8;
  lo.seed = 9;
  const auto design = locking::lock_dmux(original, lo);

  TempDir dir("e2e");
  core::MuxLinkOptions opts;
  opts.epochs = 6;
  opts.learning_rate = 1e-3;
  opts.max_train_links = 200;
  opts.seed = 3;
  opts.use_zoo = true;
  opts.zoo_dir = (dir.path / "zoo").string();
  opts.scheme = "dmux";

  // Cold: trains and populates the registry.
  const auto cold = core::MuxLinkAttack(opts).run(design.netlist);
  EXPECT_TRUE(cold.serving.zoo_enabled);
  EXPECT_FALSE(cold.serving.zoo_hit);
  EXPECT_FALSE(cold.serving.zoo_key.empty());

  // Warm: mmap-served, score-cache hits, bit-identical.
  const auto warm = core::MuxLinkAttack(opts).run(design.netlist);
  EXPECT_TRUE(warm.serving.zoo_hit);
  EXPECT_EQ(warm.serving.zoo_key, cold.serving.zoo_key);
  EXPECT_GT(warm.serving.bytes_mapped, 0u);
  EXPECT_GT(warm.serving.cache_hits, 0u);
  expect_same_attack_result(cold, warm, "warm");

  // Fresh: score cache cleared, scores recomputed through the mapping.
  fs::remove_all(dir.path / "zoo" / "scores");
  fs::create_directories(dir.path / "zoo" / "scores");
  const auto fresh = core::MuxLinkAttack(opts).run(design.netlist);
  EXPECT_TRUE(fresh.serving.zoo_hit);
  EXPECT_EQ(fresh.serving.cache_hits, 0u);
  expect_same_attack_result(cold, fresh, "fresh");

  // Copy fallback: MUXLINK_ZOO_MMAP=0 must not change a single bit.
  ::setenv("MUXLINK_ZOO_MMAP", "0", 1);
  const auto nomap = core::MuxLinkAttack(opts).run(design.netlist);
  ::unsetenv("MUXLINK_ZOO_MMAP");
  EXPECT_TRUE(nomap.serving.zoo_hit);
  EXPECT_EQ(nomap.serving.bytes_mapped, 0u);
  expect_same_attack_result(cold, nomap, "nomap");

  // A corrupted blob falls back to training (and repairs the entry), never
  // to a wrong answer.
  {
    const zoo::Registry reg(dir.path / "zoo");
    const auto path = reg.entry_path(cold.serving.zoo_key);
    std::string bytes = slurp(path);
    bytes[bytes.size() - 5] ^= 0x10;
    spew(path, bytes);
  }
  const auto repaired = core::MuxLinkAttack(opts).run(design.netlist);
  EXPECT_FALSE(repaired.serving.zoo_hit);
  expect_same_attack_result(cold, repaired, "repaired");

  // Warm start: fine-tunes from the stored entry, registers under its own
  // key (coherence: it can never serve a cold run), and is itself
  // deterministic — a second warm-started run is served and bit-identical.
  core::MuxLinkOptions wopts = opts;
  wopts.warm_start = cold.serving.zoo_key;
  wopts.warm_epochs = 2;
  const auto tuned = core::MuxLinkAttack(wopts).run(design.netlist);
  EXPECT_TRUE(tuned.serving.warm_start);
  EXPECT_FALSE(tuned.serving.zoo_hit);
  EXPECT_NE(tuned.serving.zoo_key, cold.serving.zoo_key);

  const auto tuned_again = core::MuxLinkAttack(wopts).run(design.netlist);
  EXPECT_TRUE(tuned_again.serving.zoo_hit);
  EXPECT_EQ(tuned_again.serving.zoo_key, tuned.serving.zoo_key);
  expect_same_attack_result(tuned, tuned_again, "tuned");
}

}  // namespace
}  // namespace muxlink
