// bench_daemon — single-line-JSON perf tracker for attack-as-a-service
// serving (DESIGN.md §13).
//
// Locks one ISCAS-style circuit, builds a small set of attack jobs (cycling
// over --distinct seeds) against a throwaway zoo, and measures three phases:
//
//   cold             each distinct spec once, sequentially (trains models,
//                    fills the zoo + score cache);
//   sequential_warm  every job run back-to-back through run_attack_job —
//                    the one-shot-CLI baseline;
//   daemon_warm      the same jobs submitted over MXRPC1 by --clients
//                    concurrent client threads to an in-process muxlinkd
//                    with --workers compute workers.
//
// The exit gate enforces the daemon determinism contract: every manifest a
// daemon worker produced must be BYTE-IDENTICAL to the sequential one for
// the same job, despite concurrent clients, shared zoo, and shared score
// cache. Exit 3 on any divergence, so CI tracks daemon serving the same way
// it tracks bench_pipeline / bench_serving.
//
//   bench_daemon [--circuit c880] [--key-bits 32] [--epochs 12]
//                [--links 2000] [--seed 1] [--jobs 6] [--distinct 2]
//                [--clients 3] [--workers 4] [--no-score-cache] [--report F]
//
// --no-score-cache makes every warm job re-score its links through GNN
// inference instead of replaying the per-link cache: that is the config
// where worker concurrency can actually pay (cache replay is so cheap that
// RPC+polling overhead dominates it).
//
// stdout is always the compact single-line manifest; --report additionally
// writes it pretty-printed to F.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "circuitgen/suites.h"
#include "common/run_manifest.h"
#include "daemon/client.h"
#include "daemon/server.h"
#include "locking/mux_lock.h"
#include "muxlink/job.h"
#include "netlist/bench_io.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"circuit", "key-bits", "epochs", "links", "seed", "jobs", "distinct",
                     "clients", "workers", "no-score-cache", "report"});
    const std::string circuit = args.get_or("circuit", "c880");
    const std::size_t jobs = static_cast<std::size_t>(args.get_long("jobs", 6));
    const std::size_t distinct =
        std::max<std::size_t>(1, static_cast<std::size_t>(args.get_long("distinct", 2)));
    const std::size_t clients =
        std::max<std::size_t>(1, static_cast<std::size_t>(args.get_long("clients", 3)));
    const int workers = static_cast<int>(args.get_long("workers", 4));

    const auto nl = circuitgen::make_benchmark(circuit, 1.0);
    locking::MuxLockOptions lopts;
    lopts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 32));
    lopts.seed = 1;
    const auto locked = locking::lock_dmux(nl, lopts);

    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() / "muxlink-bench-daemon";
    std::filesystem::remove_all(tmp);
    std::filesystem::create_directories(tmp);
    const std::filesystem::path zoo_dir = tmp / "zoo";

    core::AttackJobSpec base;
    base.attack = "muxlink";
    base.circuit = locked.netlist.name();
    base.bench = netlist::write_bench(locked.netlist);
    base.epochs = static_cast<int>(args.get_long("epochs", 12));
    base.max_train_links = static_cast<std::size_t>(args.get_long("links", 2000));
    base.scheme = "dmux";
    base.use_zoo = true;
    base.zoo_dir = zoo_dir.string();
    base.score_cache = !args.has("no-score-cache");
    const std::uint64_t seed0 = static_cast<std::uint64_t>(args.get_long("seed", 1));
    std::vector<core::AttackJobSpec> specs;
    for (std::size_t i = 0; i < jobs; ++i) {
      core::AttackJobSpec s = base;
      s.seed = seed0 + (i % distinct);
      specs.push_back(std::move(s));
    }

    // Phase 1: cold — train each distinct model once, filling the zoo.
    const auto t_cold = Clock::now();
    for (std::size_t i = 0; i < distinct && i < jobs; ++i) {
      core::run_attack_job(specs[i]);
    }
    const double cold_seconds = seconds_since(t_cold);

    // Phase 2: the one-shot-CLI baseline — every job, back to back.
    std::vector<std::string> sequential(jobs);
    const auto t_seq = Clock::now();
    for (std::size_t i = 0; i < jobs; ++i) {
      sequential[i] = core::run_attack_job(specs[i]).manifest.dump_pretty();
    }
    const double sequential_seconds = seconds_since(t_seq);

    // Phase 3: the same jobs through an in-process muxlinkd.
    daemon::DaemonOptions dopts;
    dopts.socket_path = (tmp / "bench.sock").string();
    dopts.workers = workers;
    dopts.max_queue = jobs + 8;
    dopts.zoo_dir = zoo_dir.string();
    daemon::DaemonServer server(dopts);
    server.start();

    std::vector<std::string> concurrent(jobs);
    std::vector<std::thread> client_threads;
    const auto t_daemon = Clock::now();
    for (std::size_t c = 0; c < clients; ++c) {
      client_threads.emplace_back([&, c] {
        daemon::ClientOptions copts;
        copts.address = "unix:" + dopts.socket_path;
        daemon::DaemonClient client(std::move(copts));
        std::vector<std::pair<std::size_t, std::string>> mine;
        for (std::size_t i = c; i < jobs; i += clients) {
          mine.emplace_back(i, client.submit(specs[i]));
        }
        for (const auto& [i, job_id] : mine) {
          const common::Json reply = client.wait_for_result(job_id, 10);
          if (const common::Json* manifest = reply.find("manifest")) {
            concurrent[i] = manifest->dump_pretty();
          }
        }
      });
    }
    for (auto& t : client_threads) t.join();
    const double daemon_seconds = seconds_since(t_daemon);
    const common::Json stats = server.stats_json();
    server.stop();
    std::filesystem::remove_all(tmp);

    bool identical = true;
    for (std::size_t i = 0; i < jobs; ++i) {
      identical = identical && !concurrent[i].empty() && concurrent[i] == sequential[i];
    }
    const double speedup = daemon_seconds > 0.0 ? sequential_seconds / daemon_seconds : 0.0;

    common::RunManifest m = common::make_run_manifest("bench_daemon");
    m.seed = seed0;
    m.circuit = circuit;
    m.scheme = "dmux";
    m.key_bits = static_cast<std::int64_t>(lopts.key_bits);
    m.add_stage("cold", cold_seconds);
    m.add_stage("sequential_warm", sequential_seconds);
    m.add_stage("daemon_warm", daemon_seconds);
    m.add_result("jobs", static_cast<double>(jobs));
    m.add_result("distinct_models", static_cast<double>(std::min(distinct, jobs)));
    m.add_result("clients", static_cast<double>(clients));
    m.add_result("daemon_workers", static_cast<double>(workers));
    m.add_result("daemon_speedup", speedup);
    m.add_result("bit_identical", identical ? 1.0 : 0.0);
    m.add_result("jobs_completed", stats.number_or("jobs_completed", 0.0));
    m.add_result("requests_served", stats.number_or("requests_served", 0.0));
    common::Json extra = common::Json::object();
    extra["epochs"] = base.epochs;
    extra["links"] = static_cast<std::int64_t>(base.max_train_links);
    extra["daemon_stats"] = stats;
    m.extra = std::move(extra);
    m.observability = common::observability_to_json();

    const common::Json j = m.to_json();
    std::cout << j.dump() << "\n";
    if (const auto report = args.get("report")) {
      std::ofstream os(*report);
      if (!os) throw std::runtime_error("cannot write '" + *report + "'");
      os << j.dump_pretty() << "\n";
    }
    if (!identical) {
      std::cerr << "daemon manifests diverged from the sequential baseline\n";
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
