// bench_fleet — single-line-JSON perf tracker for fleet-coordinated serving
// (DESIGN.md §14).
//
// Locks one ISCAS-style circuit, builds a set of attack jobs (cycling over
// --distinct seeds) against a throwaway zoo, and measures three phases:
//
//   cold             each distinct spec once, sequentially (trains models,
//                    fills the zoo + score cache);
//   sequential_warm  every job run back-to-back through run_attack_job —
//                    the one-process baseline;
//   fleet_warm       the same jobs submitted through a FleetCoordinator
//                    fanning out to --backends in-process muxlinkd servers
//                    (--workers compute workers each).
//
// The exit gate enforces the fleet determinism contract: every manifest the
// fleet delivered must be BYTE-IDENTICAL to the sequential one for the same
// job, despite fan-out, retries and shared zoo state. Exit 3 on any
// divergence, so CI tracks fleet serving the same way it tracks
// bench_daemon.
//
//   bench_fleet [--circuit c880] [--key-bits 32] [--epochs 12]
//               [--links 2000] [--seed 1] [--jobs 6] [--distinct 2]
//               [--backends 2] [--workers 2] [--hedge-ms N] [--report F]
//
// stdout is always the compact single-line manifest; --report additionally
// writes it pretty-printed to F.
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "circuitgen/suites.h"
#include "common/run_manifest.h"
#include "daemon/server.h"
#include "fleet/coordinator.h"
#include "locking/mux_lock.h"
#include "muxlink/job.h"
#include "netlist/bench_io.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"circuit", "key-bits", "epochs", "links", "seed", "jobs", "distinct",
                     "backends", "workers", "hedge-ms", "report"});
    const std::string circuit = args.get_or("circuit", "c880");
    const std::size_t jobs = static_cast<std::size_t>(args.get_long("jobs", 6));
    const std::size_t distinct =
        std::max<std::size_t>(1, static_cast<std::size_t>(args.get_long("distinct", 2)));
    const std::size_t backends =
        std::max<std::size_t>(1, static_cast<std::size_t>(args.get_long("backends", 2)));
    const int workers = static_cast<int>(args.get_long("workers", 2));

    const auto nl = circuitgen::make_benchmark(circuit, 1.0);
    locking::MuxLockOptions lopts;
    lopts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 32));
    lopts.seed = 1;
    const auto locked = locking::lock_dmux(nl, lopts);

    const std::filesystem::path tmp =
        std::filesystem::temp_directory_path() / "muxlink-bench-fleet";
    std::filesystem::remove_all(tmp);
    std::filesystem::create_directories(tmp);
    const std::filesystem::path zoo_dir = tmp / "zoo";

    core::AttackJobSpec base;
    base.attack = "muxlink";
    base.circuit = locked.netlist.name();
    base.bench = netlist::write_bench(locked.netlist);
    base.epochs = static_cast<int>(args.get_long("epochs", 12));
    base.max_train_links = static_cast<std::size_t>(args.get_long("links", 2000));
    base.scheme = "dmux";
    base.use_zoo = true;
    base.zoo_dir = zoo_dir.string();
    const std::uint64_t seed0 = static_cast<std::uint64_t>(args.get_long("seed", 1));
    std::vector<core::AttackJobSpec> specs;
    for (std::size_t i = 0; i < jobs; ++i) {
      core::AttackJobSpec s = base;
      s.seed = seed0 + (i % distinct);
      specs.push_back(std::move(s));
    }

    // Phase 1: cold — train each distinct model once, filling the zoo.
    const auto t_cold = Clock::now();
    for (std::size_t i = 0; i < distinct && i < jobs; ++i) {
      core::run_attack_job(specs[i]);
    }
    const double cold_seconds = seconds_since(t_cold);

    // Phase 2: the one-process baseline — every job, back to back.
    std::vector<std::string> sequential(jobs);
    const auto t_seq = Clock::now();
    for (std::size_t i = 0; i < jobs; ++i) {
      sequential[i] = core::run_attack_job(specs[i]).manifest.dump_pretty();
    }
    const double sequential_seconds = seconds_since(t_seq);

    // Phase 3: the same jobs fanned out by the coordinator.
    std::vector<std::unique_ptr<daemon::DaemonServer>> servers;
    fleet::FleetOptions fopts;
    for (std::size_t b = 0; b < backends; ++b) {
      daemon::DaemonOptions dopts;
      dopts.socket_path = (tmp / ("backend-" + std::to_string(b) + ".sock")).string();
      dopts.workers = workers;
      dopts.max_queue = jobs + 8;
      dopts.zoo_dir = zoo_dir.string();
      servers.push_back(std::make_unique<daemon::DaemonServer>(dopts));
      servers.back()->start();
      fopts.backends.push_back("unix:" + dopts.socket_path);
    }
    fopts.hedge_after_ms = static_cast<int>(args.get_long("hedge-ms", 0));
    fopts.allow_local_fallback = false;  // the bench measures the fleet, not degradation

    fleet::FleetCoordinator coord(fopts);
    coord.start();
    const auto t_fleet = Clock::now();
    std::vector<std::string> ids;
    for (const auto& spec : specs) ids.push_back(coord.submit(spec, fleet::Priority::kBulk));
    std::vector<std::string> fleet_out(jobs);
    bool all_ok = true;
    for (std::size_t i = 0; i < jobs; ++i) {
      const fleet::FleetJobResult r = coord.wait(ids[i]);
      all_ok = all_ok && r.ok;
      if (r.ok) fleet_out[i] = r.manifest.dump_pretty();
    }
    const double fleet_seconds = seconds_since(t_fleet);
    const common::Json stats = coord.stats_json();
    coord.stop();
    for (auto& s : servers) s->stop();
    std::filesystem::remove_all(tmp);

    bool identical = all_ok;
    for (std::size_t i = 0; i < jobs; ++i) {
      identical = identical && !fleet_out[i].empty() && fleet_out[i] == sequential[i];
    }
    const double speedup = fleet_seconds > 0.0 ? sequential_seconds / fleet_seconds : 0.0;

    common::RunManifest m = common::make_run_manifest("bench_fleet");
    m.seed = seed0;
    m.circuit = circuit;
    m.scheme = "dmux";
    m.key_bits = static_cast<std::int64_t>(lopts.key_bits);
    m.add_stage("cold", cold_seconds);
    m.add_stage("sequential_warm", sequential_seconds);
    m.add_stage("fleet_warm", fleet_seconds);
    m.add_result("jobs", static_cast<double>(jobs));
    m.add_result("distinct_models", static_cast<double>(std::min(distinct, jobs)));
    m.add_result("fleet_backends", static_cast<double>(backends));
    m.add_result("backend_workers", static_cast<double>(workers));
    m.add_result("fleet_speedup", speedup);
    m.add_result("bit_identical", identical ? 1.0 : 0.0);
    m.add_result("jobs_completed", stats.number_or("jobs_completed", 0.0));
    m.add_result("retries", stats.number_or("retries", 0.0));
    m.add_result("duplicate_results", stats.number_or("duplicate_results", 0.0));
    common::Json extra = common::Json::object();
    extra["epochs"] = base.epochs;
    extra["links"] = static_cast<std::int64_t>(base.max_train_links);
    extra["fleet_stats"] = stats;
    m.extra = std::move(extra);
    m.observability = common::observability_to_json();

    const common::Json j = m.to_json();
    std::cout << j.dump() << "\n";
    if (const auto report = args.get("report")) {
      std::ofstream os(*report);
      if (!os) throw std::runtime_error("cannot write '" + *report + "'");
      os << j.dump_pretty() << "\n";
    }
    if (!identical) {
      std::cerr << "fleet manifests diverged from the sequential baseline\n";
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
