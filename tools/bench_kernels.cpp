// bench_kernels — single-line-JSON microbenchmark for the inner kernels.
//
// bench_pipeline tracks the end-to-end attack; this tool isolates the kernel
// families underneath it so a layout, blocking, or SIMD-dispatch regression
// is visible without retraining anything:
//
//   * enclosing-subgraph extraction (arena fast path vs retained naive
//     reference), reported as links/sec — the ISSUE-2 acceptance criterion
//     is fast/naive >= 1.5x;
//   * CSR propagate / propagate_transpose on a real encoded subgraph,
//     through the dispatched table;
//   * each matmul shape three ways: naive oracle, blocked scalar, and the
//     runtime-dispatched table (gnn::kernels(), which is AVX2 where the
//     host supports it);
//   * the element-wise training loops (tanh, Adam) dispatched vs scalar.
//
// Everything runs single-threaded on purpose: these are per-core kernel
// numbers, orthogonal to the thread-pool scaling bench_pipeline measures.
//
//   bench_kernels [--circuit c880] [--hops 3] [--min-ms 300] [--rows 64]
//                 [--simd auto|avx2|scalar] [--report F]
//
// Appends nothing; prints one muxlink.run/v1 manifest line to stdout
// (--report additionally writes it pretty-printed to F). Check the output
// in as BENCH_kernels.json (see EXPERIMENTS.md for the refresh workflow).
//
// Exit-code floors (per resolved ISA, enforced so CI catches a regression
// without parsing JSON; exit 3 on violation):
//   always        extract_speedup          >= 1.5
//   isa == scalar at_b_accum vs naive      >= 1.5   (blocked kernel floor)
//   isa == avx2   at_b_accum vs naive      >= 4.0
//   isa == avx2   tanh vs scalar           >= 2.0   (element-wise floor)
//   isa == avx2   adam vs scalar           >= 1.8   (sqrt/div-bound; the
//                 measured value in BENCH_kernels.json is >= 2x, the exit
//                 floor leaves headroom for timer noise on shared hosts)
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <random>
#include <vector>

#include "circuitgen/suites.h"
#include "common/cpu_features.h"
#include "common/run_manifest.h"
#include "common/thread_pool.h"
#include "gnn/dgcnn.h"
#include "gnn/encoding.h"
#include "gnn/simd.h"
#include "graph/circuit_graph.h"
#include "graph/subgraph.h"
#include "graph/subgraph_naive.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// Runs `fn` in doubling batches until it has consumed at least `min_seconds`
// of wall clock, then returns seconds per call.
template <typename Fn>
double time_per_call(double min_seconds, Fn&& fn) {
  std::size_t batch = 1;
  for (;;) {
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) fn(i);
    const double elapsed = seconds_since(t0);
    if (elapsed >= min_seconds) return elapsed / static_cast<double>(batch);
    batch = elapsed <= 0.0 ? batch * 8 : batch * 2;
  }
}

gnn::Matrix random_matrix(int r, int c, std::mt19937_64& rng) {
  gnn::Matrix m(r, c);
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  for (int i = 0; i < r; ++i)
    for (int j = 0; j < c; ++j) m.at(i, j) = u(rng);
  return m;
}

gnn::AlignedVec random_vec(std::size_t n, std::mt19937_64& rng) {
  std::uniform_real_distribution<double> u(-1.0, 1.0);
  gnn::AlignedVec v(n);
  for (double& x : v) x = u(rng);
  return v;
}

struct KernelTimes {
  double blocked_ns = 0.0;
  double naive_ns = 0.0;
  double dispatch_ns = 0.0;
  double speedup() const { return blocked_ns > 0.0 ? naive_ns / blocked_ns : 0.0; }
  double dispatch_speedup() const {
    return dispatch_ns > 0.0 ? naive_ns / dispatch_ns : 0.0;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"circuit", "hops", "min-ms", "rows", "report", "simd"});
    if (const auto simd = args.get("simd")) {
      common::set_simd_mode(common::parse_simd_mode(*simd));
    }
    const std::string circuit = args.get_or("circuit", "c880");
    const int hops = static_cast<int>(args.get_long("hops", 3));
    const double min_s = static_cast<double>(args.get_long("min-ms", 300)) / 1000.0;
    const int rows = static_cast<int>(args.get_long("rows", 64));

    common::set_num_threads(1);  // per-core kernel numbers

    const gnn::KernelTable& kn = gnn::kernels();
    const gnn::KernelTable& sc = gnn::scalar_kernels();

    const auto nl = circuitgen::make_benchmark(circuit, 1.0);
    const auto g = graph::build_circuit_graph(nl);
    const auto edges = g.all_edges();
    if (edges.empty()) throw std::runtime_error("bench_kernels: circuit has no edges");
    graph::SubgraphOptions sgopts;
    sgopts.hops = hops;

    // --- extraction: arena fast path vs naive reference --------------------
    // volatile sink defeats dead-code elimination without touching results.
    volatile std::size_t sink = 0;
    const double fast_s = time_per_call(min_s, [&](std::size_t i) {
      sink = sink + graph::extract_enclosing_subgraph(g, edges[i % edges.size()], sgopts).num_nodes();
    });
    const double naive_s = time_per_call(min_s, [&](std::size_t i) {
      sink = sink +
             graph::extract_enclosing_subgraph_naive(g, edges[i % edges.size()], sgopts).num_nodes();
    });
    const double fast_lps = 1.0 / fast_s;
    const double naive_lps = 1.0 / naive_s;

    // --- propagate on a real encoded subgraph (dispatched table) -----------
    const auto sample =
        gnn::encode_subgraph(graph::extract_enclosing_subgraph(g, edges[edges.size() / 2], sgopts),
                             hops, 1);
    const int n = sample.x.rows;
    std::mt19937_64 rng(1);
    const gnn::Matrix h32 = random_matrix(n, 32, rng);
    gnn::Matrix prop_out;
    const double prop_s =
        time_per_call(min_s, [&](std::size_t) { kn.propagate(sample, h32, prop_out); });
    gnn::Matrix propt_out;
    const double propt_s = time_per_call(
        min_s, [&](std::size_t) { kn.propagate_transpose(sample, h32, propt_out); });

    // --- matmul kernels on DGCNN shapes ------------------------------------
    // Forward conv-1: (rows x feat) * (feat x 32); feat = encoding width.
    const int feat = gnn::feature_dim_for_hops(hops);
    const gnn::Matrix a_fwd = random_matrix(rows, feat, rng);
    const gnn::Matrix w_fwd = random_matrix(feat, 32, rng);
    gnn::Matrix out;
    KernelTimes mm;
    mm.blocked_ns =
        1e9 * time_per_call(min_s, [&](std::size_t) { gnn::matmul(a_fwd, w_fwd, out); });
    mm.naive_ns =
        1e9 * time_per_call(min_s, [&](std::size_t) { gnn::matmul_naive(a_fwd, w_fwd, out); });
    mm.dispatch_ns =
        1e9 * time_per_call(min_s, [&](std::size_t) { kn.matmul(a_fwd, w_fwd, out); });

    // Weight gradient: (rows x feat)^T * (rows x 32) accumulated into feat x 32.
    const gnn::Matrix b_grad = random_matrix(rows, 32, rng);
    gnn::Matrix acc(feat, 32);
    KernelTimes atb;
    atb.blocked_ns = 1e9 * time_per_call(
                               min_s, [&](std::size_t) { gnn::matmul_at_b_accum(a_fwd, b_grad, acc); });
    acc.zero();
    atb.naive_ns = 1e9 * time_per_call(min_s, [&](std::size_t) {
                     gnn::matmul_at_b_accum_naive(a_fwd, b_grad, acc);
                   });
    acc.zero();
    atb.dispatch_ns = 1e9 * time_per_call(
                                min_s, [&](std::size_t) { kn.matmul_at_b_accum(a_fwd, b_grad, acc); });

    // Input gradient: (rows x 32) * (feat x 32)^T.
    KernelTimes abt;
    abt.blocked_ns =
        1e9 * time_per_call(min_s, [&](std::size_t) { gnn::matmul_a_bt(b_grad, w_fwd, out); });
    abt.naive_ns = 1e9 * time_per_call(
                             min_s, [&](std::size_t) { gnn::matmul_a_bt_naive(b_grad, w_fwd, out); });
    abt.dispatch_ns =
        1e9 * time_per_call(min_s, [&](std::size_t) { kn.matmul_a_bt(b_grad, w_fwd, out); });

    // --- element-wise training loops, dispatched vs scalar -----------------
    // Sized like a conv activation block (rows x 128). tanh mutates in place,
    // so each call restores the buffer first; the memcpy cost is identical on
    // both sides of the comparison. Adam refreshes the gradient the same way
    // to keep m/v out of denormal territory during long batches.
    const std::size_t elems = static_cast<std::size_t>(rows) * 128;
    const std::size_t bytes = elems * sizeof(double);
    const gnn::AlignedVec tanh_src = random_vec(elems, rng);
    gnn::AlignedVec buf(elems);
    const double tanh_scalar_s = time_per_call(min_s, [&](std::size_t) {
      std::memcpy(buf.data(), tanh_src.data(), bytes);
      sc.tanh_inplace(buf.data(), elems);
    });
    const double tanh_dispatch_s = time_per_call(min_s, [&](std::size_t) {
      std::memcpy(buf.data(), tanh_src.data(), bytes);
      kn.tanh_inplace(buf.data(), elems);
    });

    // The kernel zeroes g, so m/v decay across calls; refreshing the gradient
    // every 256 calls keeps them far from denormal territory (m decays ~10x
    // slower than that range per refresh window) while keeping the memcpy
    // amortized out of the per-call number.
    const gnn::AlignedVec grad_src = random_vec(elems, rng);
    gnn::AlignedVec w = random_vec(elems, rng);
    gnn::AlignedVec gr(elems), am(elems), av(elems);
    const double adam_scalar_s = time_per_call(min_s, [&](std::size_t i) {
      if (i % 256 == 0) std::memcpy(gr.data(), grad_src.data(), bytes);
      sc.adam_update(w.data(), gr.data(), am.data(), av.data(), elems, 1e-3, 0.9, 0.999, 1.0);
    });
    const double adam_dispatch_s = time_per_call(min_s, [&](std::size_t i) {
      if (i % 256 == 0) std::memcpy(gr.data(), grad_src.data(), bytes);
      kn.adam_update(w.data(), gr.data(), am.data(), av.data(), elems, 1e-3, 0.9, 0.999, 1.0);
    });
    const double tanh_speedup = tanh_dispatch_s > 0.0 ? tanh_scalar_s / tanh_dispatch_s : 0.0;
    const double adam_speedup = adam_dispatch_s > 0.0 ? adam_scalar_s / adam_dispatch_s : 0.0;

    common::RunManifest m = common::make_run_manifest("bench_kernels");
    m.threads = 1;  // per-core kernel numbers by construction
    m.seed = 1;
    m.circuit = circuit;
    m.add_result("extract_links_per_sec", fast_lps);
    m.add_result("extract_naive_links_per_sec", naive_lps);
    m.add_result("extract_speedup", naive_lps > 0.0 ? fast_lps / naive_lps : 0.0);
    m.add_result("propagate_ns", 1e9 * prop_s);
    m.add_result("propagate_transpose_ns", 1e9 * propt_s);
    m.add_result("matmul_blocked_ns", mm.blocked_ns);
    m.add_result("matmul_naive_ns", mm.naive_ns);
    m.add_result("matmul_speedup", mm.speedup());
    m.add_result("matmul_dispatch_ns", mm.dispatch_ns);
    m.add_result("matmul_dispatch_speedup", mm.dispatch_speedup());
    m.add_result("at_b_accum_blocked_ns", atb.blocked_ns);
    m.add_result("at_b_accum_naive_ns", atb.naive_ns);
    m.add_result("at_b_accum_speedup", atb.speedup());
    m.add_result("at_b_accum_dispatch_ns", atb.dispatch_ns);
    m.add_result("at_b_accum_dispatch_speedup", atb.dispatch_speedup());
    m.add_result("a_bt_blocked_ns", abt.blocked_ns);
    m.add_result("a_bt_naive_ns", abt.naive_ns);
    m.add_result("a_bt_speedup", abt.speedup());
    m.add_result("a_bt_dispatch_ns", abt.dispatch_ns);
    m.add_result("a_bt_dispatch_speedup", abt.dispatch_speedup());
    m.add_result("tanh_scalar_ns", 1e9 * tanh_scalar_s);
    m.add_result("tanh_dispatch_ns", 1e9 * tanh_dispatch_s);
    m.add_result("tanh_dispatch_speedup", tanh_speedup);
    m.add_result("adam_scalar_ns", 1e9 * adam_scalar_s);
    m.add_result("adam_dispatch_ns", 1e9 * adam_dispatch_s);
    m.add_result("adam_dispatch_speedup", adam_speedup);
    common::Json extra = common::Json::object();
    extra["hops"] = hops;
    extra["edges"] = static_cast<std::int64_t>(edges.size());
    extra["subgraph_nodes"] = n;
    extra["matmul_rows"] = rows;
    extra["matmul_feat"] = feat;
    extra["elementwise_elems"] = static_cast<std::int64_t>(elems);
    extra["dispatch_isa"] = std::string(kn.isa);
    extra["cpu"] = gnn::cpu_info_json();
    m.extra = std::move(extra);

    const common::Json j = m.to_json();
    std::cout << j.dump() << "\n";
    if (const auto report = args.get("report")) {
      std::ofstream os(*report);
      if (!os) throw std::runtime_error("cannot write '" + *report + "'");
      os << j.dump_pretty() << "\n";
    }

    // Per-ISA exit floors (header comment documents the table).
    std::vector<std::string> failures;
    if (fast_lps < 1.5 * naive_lps) failures.push_back("extract_speedup < 1.5");
    if (std::string(kn.isa) == "avx2") {
      if (atb.dispatch_speedup() < 4.0) failures.push_back("avx2 at_b_accum_dispatch_speedup < 4.0");
      if (tanh_speedup < 2.0) failures.push_back("avx2 tanh_dispatch_speedup < 2.0");
      if (adam_speedup < 1.8) failures.push_back("avx2 adam_dispatch_speedup < 1.8");
    } else {
      if (atb.speedup() < 1.5) failures.push_back("scalar at_b_accum_speedup < 1.5");
    }
    for (const auto& f : failures) std::cerr << "floor violated: " << f << "\n";
    return failures.empty() ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
