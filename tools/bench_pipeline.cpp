// bench_pipeline — single-line-JSON perf tracker for the MuxLink pipeline.
//
// Locks one ISCAS-style circuit, runs the full attack once single-threaded
// and once with N threads, and prints one JSON object with the per-stage
// wall times and the end-to-end speedup. Registered in CMake but NOT in
// ctest: it exists so successive PRs can track a perf trajectory, e.g.
//
//   ./build/tools/bench_pipeline --circuit c880 --threads 8 >> perf.jsonl
//
//   bench_pipeline [--circuit c880] [--key-bits 32] [--threads N]
//                  [--epochs 20] [--links 2000] [--seed 1]
#include <iostream>
#include <thread>

#include "circuitgen/suites.h"
#include "common/thread_pool.h"
#include "locking/mux_lock.h"
#include "muxlink/attack.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;

core::MuxLinkResult run_attack(const netlist::Netlist& locked, const core::MuxLinkOptions& opts,
                               std::size_t threads) {
  common::set_num_threads(threads);
  core::MuxLinkAttack attack(opts);
  return attack.run(locked);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"circuit", "key-bits", "threads", "epochs", "links", "seed"});
    const std::string circuit = args.get_or("circuit", "c880");
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t threads = static_cast<std::size_t>(
        args.get_long("threads", static_cast<long>(hw > 0 ? hw : 4)));

    const auto nl = circuitgen::make_benchmark(circuit, 1.0);
    locking::MuxLockOptions lopts;
    lopts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 32));
    lopts.seed = 1;
    const auto locked = locking::lock_dmux(nl, lopts);

    core::MuxLinkOptions opts;
    opts.epochs = static_cast<int>(args.get_long("epochs", 20));
    opts.learning_rate = 1e-3;
    opts.max_train_links = static_cast<std::size_t>(args.get_long("links", 2000));
    opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));

    const auto base = run_attack(locked.netlist, opts, 1);
    const auto fast = run_attack(locked.netlist, opts, threads);

    bool identical = base.key == fast.key;
    for (std::size_t i = 0; identical && i < base.likelihoods.size(); ++i) {
      identical = base.likelihoods[i].score_a == fast.likelihoods[i].score_a &&
                  base.likelihoods[i].score_b == fast.likelihoods[i].score_b;
    }

    const double speedup =
        fast.total_seconds > 0.0 ? base.total_seconds / fast.total_seconds : 0.0;
    std::cout << "{\"circuit\":\"" << circuit << "\",\"key_bits\":" << lopts.key_bits
              << ",\"training_links\":" << base.training_links << ",\"threads\":" << threads
              << ",\"sample_seconds_1\":" << base.sample_seconds
              << ",\"train_seconds_1\":" << base.train_seconds
              << ",\"score_seconds_1\":" << base.score_seconds
              << ",\"total_seconds_1\":" << base.total_seconds
              << ",\"sample_seconds_n\":" << fast.sample_seconds
              << ",\"train_seconds_n\":" << fast.train_seconds
              << ",\"score_seconds_n\":" << fast.score_seconds
              << ",\"total_seconds_n\":" << fast.total_seconds << ",\"speedup\":" << speedup
              << ",\"bit_identical\":" << (identical ? "true" : "false") << "}\n";
    return identical ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
