// bench_pipeline — single-line-JSON perf tracker for the MuxLink pipeline.
//
// Locks one ISCAS-style circuit, runs the full attack once single-threaded
// and once with N threads, and prints one muxlink.run/v1 manifest (see
// common/run_manifest.h) with the per-stage wall times and the end-to-end
// thread speedup. Registered in CMake but NOT in ctest: it exists so
// successive PRs can track a perf trajectory, e.g.
//
//   ./build/tools/bench_pipeline --circuit c880 --threads 8 >> perf.jsonl
//
//   bench_pipeline [--circuit c880] [--key-bits 32] [--threads N]
//                  [--epochs 20] [--links 2000] [--seed 1] [--report F]
//                  [--simd auto|avx2|scalar]
//
// On a single-core host the N-thread leg is skipped (there is no speedup to
// measure) and the manifest records thread_speedup_skipped=1 with the reason
// in extra; the bit-identity exit gate then only covers the 1-thread run.
//
// stdout is always the compact single-line manifest; --report additionally
// writes it pretty-printed to F.
#include <fstream>
#include <iostream>
#include <thread>

#include "circuitgen/suites.h"
#include "common/cpu_features.h"
#include "common/run_manifest.h"
#include "common/thread_pool.h"
#include "gnn/simd.h"
#include "locking/mux_lock.h"
#include "muxlink/attack.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;

core::MuxLinkResult run_attack(const netlist::Netlist& locked, const core::MuxLinkOptions& opts,
                               std::size_t threads) {
  common::set_num_threads(threads);
  core::MuxLinkAttack attack(opts);
  return attack.run(locked);
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"circuit", "key-bits", "threads", "epochs", "links", "seed", "report",
                     "simd"});
    if (const auto simd = args.get("simd")) {
      common::set_simd_mode(common::parse_simd_mode(*simd));
    }
    const std::string circuit = args.get_or("circuit", "c880");
    const unsigned hw = std::thread::hardware_concurrency();
    const std::size_t threads = static_cast<std::size_t>(
        args.get_long("threads", static_cast<long>(hw > 0 ? hw : 4)));
    // With one hardware core an N-thread run measures scheduler overhead,
    // not parallel speedup; skip it and say so in the manifest.
    const bool skip_threads = hw <= 1;

    const auto nl = circuitgen::make_benchmark(circuit, 1.0);
    locking::MuxLockOptions lopts;
    lopts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 32));
    lopts.seed = 1;
    const auto locked = locking::lock_dmux(nl, lopts);

    core::MuxLinkOptions opts;
    opts.epochs = static_cast<int>(args.get_long("epochs", 20));
    opts.learning_rate = 1e-3;
    opts.max_train_links = static_cast<std::size_t>(args.get_long("links", 2000));
    opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));

    const auto base = run_attack(locked.netlist, opts, 1);

    common::RunManifest m = common::make_run_manifest("bench_pipeline");
    m.threads = static_cast<int>(skip_threads ? 1 : threads);
    m.seed = opts.seed;
    m.circuit = circuit;
    m.scheme = "dmux";
    m.key_bits = static_cast<std::int64_t>(lopts.key_bits);
    m.add_stage("sample_1", base.sample_seconds);
    m.add_stage("train_1", base.train_seconds);
    m.add_stage("score_1", base.score_seconds);
    m.add_stage("total_1", base.total_seconds);

    bool identical = true;
    if (!skip_threads) {
      const auto fast = run_attack(locked.netlist, opts, threads);
      identical = base.key == fast.key;
      for (std::size_t i = 0; identical && i < base.likelihoods.size(); ++i) {
        identical = base.likelihoods[i].score_a == fast.likelihoods[i].score_a &&
                    base.likelihoods[i].score_b == fast.likelihoods[i].score_b;
      }
      const double speedup =
          fast.total_seconds > 0.0 ? base.total_seconds / fast.total_seconds : 0.0;
      m.add_stage("sample_n", fast.sample_seconds);
      m.add_stage("train_n", fast.train_seconds);
      m.add_stage("score_n", fast.score_seconds);
      m.add_stage("total_n", fast.total_seconds);
      m.add_result("thread_speedup", speedup);
      m.add_result("bit_identical", identical ? 1.0 : 0.0);
    }
    m.add_result("thread_speedup_skipped", skip_threads ? 1.0 : 0.0);
    m.add_result("training_links", static_cast<double>(base.training_links));
    common::Json extra = common::Json::object();
    extra["epochs"] = opts.epochs;
    extra["links"] = static_cast<std::int64_t>(opts.max_train_links);
    extra["cpu"] = gnn::cpu_info_json();
    if (skip_threads) {
      extra["thread_speedup_skip_reason"] =
          std::string("single hardware core: no parallel speedup to measure");
    }
    m.extra = std::move(extra);
    m.observability = common::observability_to_json();

    const common::Json j = m.to_json();
    std::cout << j.dump() << "\n";
    if (const auto report = args.get("report")) {
      std::ofstream os(*report);
      if (!os) throw std::runtime_error("cannot write '" + *report + "'");
      os << j.dump_pretty() << "\n";
    }
    return identical ? 0 : 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
