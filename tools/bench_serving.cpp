// bench_serving — single-line-JSON perf tracker for the serving layer
// (DESIGN.md §11).
//
// Locks one ISCAS-style circuit and runs the attack three times against a
// throwaway zoo directory:
//
//   cold   empty registry: sample + train + score, blobs inserted;
//   warm   full registry: weights mmap'd in place, score-cache hits;
//   fresh  full registry, score cache cleared: mmap'd weights, scores
//          recomputed — the determinism probe for cache-served results.
//
// The exit gate enforces the serving contract: the warm run must produce a
// key and per-link scores bit-identical to the cold run (and the fresh run
// to both), and must be at least `--min-speedup` (default 5) times faster
// end to end. Exit 3 on any violation, so CI can track serving regressions
// the same way it tracks bench_pipeline.
//
//   bench_serving [--circuit c880] [--key-bits 32] [--epochs 20]
//                 [--links 2000] [--seed 1] [--min-speedup 5] [--report F]
//                 [--simd auto|avx2|scalar]
//
// stdout is always the compact single-line manifest; --report additionally
// writes it pretty-printed to F.
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "circuitgen/suites.h"
#include "common/cpu_features.h"
#include "common/run_manifest.h"
#include "gnn/simd.h"
#include "locking/mux_lock.h"
#include "muxlink/attack.h"
#include "tools/cli_args.h"
#include "zoo/registry.h"

namespace {

using namespace muxlink;

bool same_scores(const core::MuxLinkResult& a, const core::MuxLinkResult& b) {
  if (a.key != b.key || a.likelihoods.size() != b.likelihoods.size()) return false;
  for (std::size_t i = 0; i < a.likelihoods.size(); ++i) {
    if (a.likelihoods[i].score_a != b.likelihoods[i].score_a ||
        a.likelihoods[i].score_b != b.likelihoods[i].score_b) {
      return false;
    }
  }
  return true;
}

// Hot-entry probe microbenchmark: N threads hammer Registry::find() on the
// one key every warm job starts from. Without bump coalescing every hit
// rewrites the blob's mtime, so the threads serialize on the inode; with
// MUXLINK_ZOO_BUMP_WINDOW_MS set only the first hit per window pays.
double probe_seconds(const zoo::Registry& reg, const std::string& key, int threads, int rounds) {
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&] {
      for (int i = 0; i < rounds; ++i) (void)reg.find(key);
    });
  }
  for (auto& w : workers) w.join();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"circuit", "key-bits", "epochs", "links", "seed", "min-speedup",
                     "report", "simd"});
    if (const auto simd = args.get("simd")) {
      common::set_simd_mode(common::parse_simd_mode(*simd));
    }
    const std::string circuit = args.get_or("circuit", "c880");
    const double min_speedup = args.get_double("min-speedup", 5.0);

    const auto nl = circuitgen::make_benchmark(circuit, 1.0);
    locking::MuxLockOptions lopts;
    lopts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 32));
    lopts.seed = 1;
    const auto locked = locking::lock_dmux(nl, lopts);

    const std::filesystem::path zoo_dir =
        std::filesystem::temp_directory_path() / "muxlink-bench-serving-zoo";
    std::filesystem::remove_all(zoo_dir);

    core::MuxLinkOptions opts;
    opts.epochs = static_cast<int>(args.get_long("epochs", 20));
    opts.learning_rate = 1e-3;
    opts.max_train_links = static_cast<std::size_t>(args.get_long("links", 2000));
    opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
    opts.use_zoo = true;
    opts.zoo_dir = zoo_dir.string();
    opts.scheme = "dmux";

    const auto cold = core::MuxLinkAttack(opts).run(locked.netlist);
    const auto warm = core::MuxLinkAttack(opts).run(locked.netlist);
    // Clear the score cache but keep the blobs: scores must recompute to
    // the same bits through the mmap'd weights.
    std::filesystem::remove_all(zoo_dir / "scores");
    std::filesystem::create_directories(zoo_dir / "scores");
    const auto fresh = core::MuxLinkAttack(opts).run(locked.netlist);

    // Concurrent zoo-probe before/after: the same hot entry hit by 8
    // threads with per-find mtime bumps vs the coalesced read-mostly path.
    constexpr int kProbeThreads = 8;
    constexpr int kProbeRounds = 200;
    const zoo::Registry reg(zoo_dir);
    const double probe_serialized =
        probe_seconds(reg, cold.serving.zoo_key, kProbeThreads, kProbeRounds);
    ::setenv("MUXLINK_ZOO_BUMP_WINDOW_MS", "1000", 1);
    const double probe_coalesced =
        probe_seconds(reg, cold.serving.zoo_key, kProbeThreads, kProbeRounds);
    ::unsetenv("MUXLINK_ZOO_BUMP_WINDOW_MS");

    std::filesystem::remove_all(zoo_dir);

    const bool identical = same_scores(cold, warm) && same_scores(cold, fresh);
    const double speedup =
        warm.total_seconds > 0.0 ? cold.total_seconds / warm.total_seconds : 0.0;
    const bool served = warm.serving.zoo_hit && fresh.serving.zoo_hit;
    const bool fast_enough = speedup >= min_speedup;

    common::RunManifest m = common::make_run_manifest("bench_serving");
    m.seed = opts.seed;
    m.circuit = circuit;
    m.scheme = "dmux";
    m.key_bits = static_cast<std::int64_t>(lopts.key_bits);
    m.add_stage("cold_total", cold.total_seconds);
    m.add_stage("cold_train", cold.train_seconds);
    m.add_stage("warm_total", warm.total_seconds);
    m.add_stage("warm_score", warm.score_seconds);
    m.add_stage("fresh_total", fresh.total_seconds);
    m.add_stage("probe_serialized", probe_serialized);
    m.add_stage("probe_coalesced", probe_coalesced);
    m.add_result("probe_coalesce_speedup",
                 probe_coalesced > 0.0 ? probe_serialized / probe_coalesced : 0.0);
    m.add_result("warm_speedup", speedup);
    m.add_result("min_speedup", min_speedup);
    m.add_result("bit_identical", identical ? 1.0 : 0.0);
    m.add_result("zoo_served", served ? 1.0 : 0.0);
    m.add_result("bytes_mapped", static_cast<double>(warm.serving.bytes_mapped));
    m.add_result("cache_hits", static_cast<double>(warm.serving.cache_hits));
    m.add_result("cache_misses", static_cast<double>(warm.serving.cache_misses));
    m.add_result("training_links", static_cast<double>(cold.training_links));
    common::Json extra = common::Json::object();
    extra["epochs"] = opts.epochs;
    extra["links"] = static_cast<std::int64_t>(opts.max_train_links);
    extra["zoo_key"] = cold.serving.zoo_key;
    extra["cpu"] = gnn::cpu_info_json();
    m.extra = std::move(extra);
    m.observability = common::observability_to_json();

    const common::Json j = m.to_json();
    std::cout << j.dump() << "\n";
    if (const auto report = args.get("report")) {
      std::ofstream os(*report);
      if (!os) throw std::runtime_error("cannot write '" + *report + "'");
      os << j.dump_pretty() << "\n";
    }
    if (!identical || !served) return 3;
    if (!fast_enough) {
      std::cerr << "serving speedup " << speedup << "x below the " << min_speedup
                << "x floor\n";
      return 3;
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
