// Tiny declarative argument parser for the muxlink CLI (kept header-only so
// the unit tests can exercise it without linking the tool).
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace muxlink::tools {

class CliArgs {
 public:
  // argv after the subcommand: positional args and --key value / --flag.
  CliArgs(int argc, const char* const* argv) {
    for (int i = 0; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string key = tok.substr(2);
        if (key.empty()) throw std::invalid_argument("empty option name");
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";  // bare flag
        }
      } else {
        positional_.push_back(tok);
      }
    }
  }

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = options_.find(key);
    return it == options_.end() ? std::nullopt : std::optional<std::string>(it->second);
  }

  std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }

  // Numeric getters report malformed values as std::invalid_argument (the
  // exit-1 usage-error class of DESIGN.md §8) instead of leaking the raw
  // std::stol/std::stod exceptions: garbage ("abc"), trailing junk ("12x"),
  // and out-of-range literals ("9e999", 20-digit integers) all produce a
  // "--<key>: ..." message naming the offending value.
  long get_long(const std::string& key, long fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    std::size_t pos = 0;
    long parsed = 0;
    try {
      parsed = std::stol(*v, &pos);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("--" + key + ": integer '" + *v + "' is out of range");
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("--" + key + ": expected an integer, got '" + *v + "'");
    }
    if (pos != v->size()) {
      throw std::invalid_argument("--" + key + ": expected an integer, got '" + *v + "'");
    }
    return parsed;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    std::size_t pos = 0;
    double parsed = 0.0;
    try {
      parsed = std::stod(*v, &pos);
    } catch (const std::out_of_range&) {
      throw std::invalid_argument("--" + key + ": number '" + *v + "' is out of range");
    } catch (const std::invalid_argument&) {
      throw std::invalid_argument("--" + key + ": expected a number, got '" + *v + "'");
    }
    if (pos != v->size()) {
      throw std::invalid_argument("--" + key + ": expected a number, got '" + *v + "'");
    }
    return parsed;
  }

  bool has(const std::string& key) const { return options_.contains(key); }

  // Rejects unknown options (catches typos early).
  void allow_only(const std::vector<std::string>& keys) const {
    for (const auto& [key, value] : options_) {
      bool ok = false;
      for (const auto& k : keys) ok = ok || k == key;
      if (!ok) throw std::invalid_argument("unknown option --" + key);
    }
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace muxlink::tools
