// Tiny declarative argument parser for the muxlink CLI (kept header-only so
// the unit tests can exercise it without linking the tool).
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace muxlink::tools {

class CliArgs {
 public:
  // argv after the subcommand: positional args and --key value / --flag.
  CliArgs(int argc, const char* const* argv) {
    for (int i = 0; i < argc; ++i) {
      const std::string tok = argv[i];
      if (tok.rfind("--", 0) == 0) {
        const std::string key = tok.substr(2);
        if (key.empty()) throw std::invalid_argument("empty option name");
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          options_[key] = argv[++i];
        } else {
          options_[key] = "";  // bare flag
        }
      } else {
        positional_.push_back(tok);
      }
    }
  }

  const std::vector<std::string>& positional() const noexcept { return positional_; }

  std::optional<std::string> get(const std::string& key) const {
    const auto it = options_.find(key);
    return it == options_.end() ? std::nullopt : std::optional<std::string>(it->second);
  }

  std::string get_or(const std::string& key, const std::string& fallback) const {
    return get(key).value_or(fallback);
  }

  long get_long(const std::string& key, long fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    std::size_t pos = 0;
    const long parsed = std::stol(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("--" + key + ": expected an integer");
    return parsed;
  }

  double get_double(const std::string& key, double fallback) const {
    const auto v = get(key);
    if (!v) return fallback;
    std::size_t pos = 0;
    const double parsed = std::stod(*v, &pos);
    if (pos != v->size()) throw std::invalid_argument("--" + key + ": expected a number");
    return parsed;
  }

  bool has(const std::string& key) const { return options_.contains(key); }

  // Rejects unknown options (catches typos early).
  void allow_only(const std::vector<std::string>& keys) const {
    for (const auto& [key, value] : options_) {
      bool ok = false;
      for (const auto& k : keys) ok = ok || k == key;
      if (!ok) throw std::invalid_argument("unknown option --" + key);
    }
  }

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;
};

}  // namespace muxlink::tools
