// fuzz_netlist — deterministic mutation fuzzer for the BENCH and Verilog
// parsers (DESIGN.md §8).
//
//   fuzz_netlist [--corpus DIR] [--iters N] [--seed S] [--max-seconds T]
//
// Each iteration picks a corpus file, applies a seeded stack of byte-level
// mutations (flips, truncations, slice splices, dictionary-token inserts —
// including BOM, CRLF, and NUL bytes), and feeds the result to the matching
// parser (*.v → parse_verilog, everything else → parse_bench). The
// contract under test: EVERY input either parses or raises a structured
// NetlistError — any other exception type, crash, or sanitizer finding is
// a bug. Inputs that parse are additionally round-tripped through the
// writer and re-parsed.
//
// The run is fully deterministic in (corpus bytes, --seed, --iters):
// corpus files are loaded in sorted filename order and all randomness
// comes from one mt19937_64. On failure the offending input is written to
// fuzz_fail_<iter>.txt and the exit status is 1; a clean run prints one
// JSON summary line and exits 0. Exit 64 on CLI misuse / empty corpus.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;

struct CorpusEntry {
  std::string name;
  std::string bytes;
  bool verilog = false;
};

constexpr std::size_t kMaxInputBytes = std::size_t{1} << 16;

// Grammar fragments that steer mutants toward interesting parser states.
// The empty entry is the NUL-byte marker (insert handles it specially —
// C strings cannot carry an embedded NUL).
const char* const kDictionary[] = {
    "INPUT(",  "OUTPUT(", "= AND(",   "= MUX(",  "= CONST0()", "#",     "(",
    ")",       ",",       "=",        "\r\n",    "\xEF\xBB\xBF", "\n\n", "module ",
    "endmodule", "assign ", "wire ",  "input ",  "output ",    "1'b0",  "1'b1",
    "//",      "/*",      "*/",       "\\",      ""};

std::string mutate(const std::string& base, const std::vector<CorpusEntry>& corpus,
                   std::mt19937_64& rng) {
  std::string s = base;
  const int rounds = 1 + static_cast<int>(rng() % 6);
  for (int r = 0; r < rounds; ++r) {
    if (s.empty()) s = "\n";
    const std::size_t pos = rng() % s.size();
    switch (rng() % 7) {
      case 0:  // flip a byte
        s[pos] = static_cast<char>(rng() & 0xFF);
        break;
      case 1:  // truncate
        s.resize(pos);
        break;
      case 2: {  // duplicate a slice
        const std::size_t len = std::min<std::size_t>(1 + rng() % 64, s.size() - pos);
        s.insert(rng() % (s.size() + 1), s.substr(pos, len));
        break;
      }
      case 3: {  // delete a slice
        const std::size_t len = std::min<std::size_t>(1 + rng() % 64, s.size() - pos);
        s.erase(pos, len);
        break;
      }
      case 4: {  // insert a dictionary token (NUL entry inserts one NUL byte)
        const std::size_t di = rng() % std::size(kDictionary);
        const char* tok = kDictionary[di];
        if (*tok == '\0') {
          s.insert(pos, 1, '\0');
        } else {
          s.insert(pos, tok);
        }
        break;
      }
      case 5: {  // splice with another corpus entry
        const CorpusEntry& other = corpus[rng() % corpus.size()];
        if (!other.bytes.empty()) {
          s = s.substr(0, pos) + other.bytes.substr(rng() % other.bytes.size());
        }
        break;
      }
      case 6: {  // repeat one character
        const std::size_t count = 1 + rng() % 256;
        s.insert(pos, count, s[pos]);
        break;
      }
    }
    if (s.size() > kMaxInputBytes) s.resize(kMaxInputBytes);
  }
  return s;
}

// One fuzz execution. Returns an empty string on contract compliance, or a
// description of the violation.
std::string run_one(const std::string& input, bool verilog) {
  try {
    const netlist::Netlist nl =
        verilog ? netlist::parse_verilog(input) : netlist::parse_bench(input, "fuzz");
    // Parsed: the writer must accept what the parser produced, and the
    // round trip must parse again.
    const std::string out = verilog ? netlist::write_verilog(nl) : netlist::write_bench(nl);
    if (verilog) {
      netlist::parse_verilog(out);
    } else {
      netlist::parse_bench(out, "fuzz2");
    }
  } catch (const netlist::NetlistError&) {
    // Structured parse error — the contract.
  } catch (const std::exception& e) {
    return std::string("unexpected exception type: ") + e.what();
  } catch (...) {
    return "unexpected non-std exception";
  }
  return "";
}

}  // namespace

int main(int argc, char** argv) {
  const tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"corpus", "iters", "seed", "max-seconds"});
  } catch (const std::exception& e) {
    std::cerr << "usage: fuzz_netlist [--corpus DIR] [--iters N] [--seed S] [--max-seconds T]\n"
              << e.what() << "\n";
    return 64;
  }
  const std::string corpus_dir = args.get_or("corpus", "tests/corpus");
  const long iters = args.get_long("iters", 10000);
  const auto seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  const double max_seconds = args.get_double("max-seconds", 0.0);  // 0 = no budget

  std::vector<CorpusEntry> corpus;
  if (std::filesystem::is_directory(corpus_dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(corpus_dir)) {
      if (!entry.is_regular_file()) continue;
      std::ifstream is(entry.path(), std::ios::binary);
      std::ostringstream buf;
      buf << is.rdbuf();
      corpus.push_back({entry.path().filename().string(), buf.str(),
                        entry.path().extension() == ".v"});
    }
  }
  if (corpus.empty()) {
    std::cerr << "fuzz_netlist: no corpus files in '" << corpus_dir << "'\n";
    return 64;
  }
  std::sort(corpus.begin(), corpus.end(),
            [](const CorpusEntry& a, const CorpusEntry& b) { return a.name < b.name; });

  std::mt19937_64 rng(seed);
  const auto t0 = std::chrono::steady_clock::now();
  auto elapsed = [&] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  };

  long executed = 0;
  long failures = 0;
  for (long i = 0; i < iters; ++i) {
    if (max_seconds > 0.0 && elapsed() > max_seconds) break;
    const CorpusEntry& base = corpus[rng() % corpus.size()];
    const std::string input = mutate(base.bytes, corpus, rng);
    const std::string violation = run_one(input, base.verilog);
    ++executed;
    if (!violation.empty()) {
      ++failures;
      const std::string dump = "fuzz_fail_" + std::to_string(i) + ".txt";
      std::ofstream(dump, std::ios::binary) << input;
      std::cerr << "fuzz_netlist: iteration " << i << " (seed " << seed << ", base "
                << base.name << "): " << violation << "\n  input dumped to " << dump << "\n";
    }
  }

  std::cout << "{\"tool\": \"fuzz_netlist\", \"corpus_files\": " << corpus.size()
            << ", \"requested_iters\": " << iters << ", \"executed\": " << executed
            << ", \"failures\": " << failures << ", \"seed\": " << seed
            << ", \"seconds\": " << elapsed() << "}\n";
  return failures == 0 ? 0 : 1;
}
