// muxlink — command-line front end for the whole tool chain.
//
//   muxlink gen <benchmark> [--scale S] [--out file.bench]
//   muxlink stats <file.bench>
//   muxlink lock <file.bench> --scheme dmux|symmetric|simll|deceptive|
//                                      naive|xor|trll
//                [--key-bits N] [--seed S] [--out locked.bench]
//                [--key-out key.txt] [--allow-partial]
//   muxlink attack <locked.bench> [--hops H] [--th T] [--epochs E]
//                  [--lr L] [--links N] [--seed S]
//                  [--key-out key.txt] [--recover out.bench]
//                  [--report run.json] [--telemetry epochs.jsonl]
//                  [--truth-key key.txt|BITS] [--orig orig.bench]
//                  [--scheme LABEL] [--patterns N]
//                  [--checkpoint-dir D] [--checkpoint-every N] [--resume]
//                  [--clip-grad X] [--save-model model.txt] [--simd MODE]
//                  [--zoo] [--zoo-dir D] [--warm-start REF]
//                  [--warm-epochs N] [--warm-lr-scale X] [--no-score-cache]
//   muxlink untangle <locked.bench>  (UNTANGLE-style routing-query mode;
//                  same flags as attack minus --th / checkpointing)
//   muxlink campaign [--schemes A,B] [--circuits X,Y] [--attacks M,N]
//                  [--key-bits N] [--scale S] [--seed S] [--hops H]
//                  [--th T] [--epochs E] [--lr L] [--links N]
//                  [--hd-patterns N] [--workers W] [--out-dir D]
//                  [--zoo] [--zoo-dir D] [--resume] [--report F]
//   muxlink zoo list|info|gc|pin|unpin [<key>] [--zoo-dir D]
//                  [--max-bytes N]
//   muxlink saam <locked.bench>
//   muxlink scope <locked.bench>
//   muxlink hd <a.bench> <b.bench> [--patterns N] [--key BITSTRING]
//   muxlink submit <locked.bench> [--attack muxlink|untangle]
//                  [attack flags] [--timeout S] [--daemon ADDR] [--wait]
//                  [--report F] [--key-out F]
//   muxlink status <job-id> [--daemon ADDR]
//   muxlink result <job-id> [--daemon ADDR] [--wait] [--report F]
//                  [--key-out F]
//   muxlink cancel <job-id> [--daemon ADDR]
//   muxlink daemon stats|shutdown [--daemon ADDR]
//
// Exit-code taxonomy (DESIGN.md §8):
//   0 success
//   1 CLI misuse (unknown flag, bad argument)
//   2 other processing errors (including a submitted job reporting failure)
//   3 input parse/validation errors (BENCH / Verilog / netlist)
//   4 model-file format errors (bad magic/version, CRC mismatch, truncation)
//   5 checkpoint errors (corrupt/torn/incompatible --resume state)
//   6 daemon/protocol errors (MXRPC1 framing violations, unreachable or
//     refusing daemon, version rejection)
#include <cctype>
#include <fstream>
#include <iostream>
#include <optional>
#include <random>

#include "attacks/constprop.h"
#include "attacks/metrics.h"
#include "attacks/saam.h"
#include "common/cpu_features.h"
#include "common/run_manifest.h"
#include "common/thread_pool.h"
#include "daemon/client.h"
#include "gnn/checkpoint.h"
#include "gnn/serialize.h"
#include "gnn/simd.h"
#include "circuitgen/suites.h"
#include "eval/campaign.h"
#include "eval/table.h"
#include "locking/mux_lock.h"
#include "locking/schemes.h"
#include "muxlink/attack.h"
#include "muxlink/job.h"
#include "muxlink/untangle.h"
#include "netlist/analysis.h"
#include "netlist/bench_io.h"
#include "netlist/verilog_io.h"
#include "sim/simulator.h"
#include "tools/cli_args.h"
#include "zoo/model_blob.h"
#include "zoo/registry.h"

namespace {

using namespace muxlink;
using tools::CliArgs;

// .v / .sv files use structural Verilog; everything else is BENCH.
bool is_verilog(const std::string& path) {
  return path.ends_with(".v") || path.ends_with(".sv");
}

netlist::Netlist read_design(const std::string& path) {
  return is_verilog(path) ? netlist::read_verilog_file(path) : netlist::read_bench_file(path);
}

void write_design(const netlist::Netlist& nl, const std::string& path) {
  if (is_verilog(path)) {
    netlist::write_verilog_file(nl, path);
  } else {
    netlist::write_bench_file(nl, path);
  }
}

int usage() {
  std::cerr <<
      R"(usage: muxlink <command> [options]

BENCH files by default; *.v / *.sv are read/written as structural Verilog.

commands:
  gen <benchmark> [--scale S] [--out F]        generate a named benchmark
  stats <file.bench>                           structural summary
  lock <file.bench> --scheme X [--key-bits N]  lock a design
       [--seed S] [--out F] [--key-out F] [--allow-partial]
  attack <locked.bench> [--hops H] [--th T]    run the MuxLink attack
       [--epochs E] [--lr L] [--links N] [--seed S]
       [--key-out F] [--recover F] [--threads N]
       [--report F]      write a muxlink.run/v1 JSON manifest (stage timings,
                         metrics snapshot, results) to F
       [--telemetry F]   stream per-epoch training telemetry (loss, AUC,
                         grad norm) to F as JSONL
       [--truth-key V]   ground-truth key (file or literal bitstring):
                         adds AC/PC/KPA to the report
       [--orig F]        original design: adds recovered-design HD% to the
                         report (averaged over completions of X bits)
       [--patterns N]    simulation patterns for --orig HD (default 10000)
       [--scheme LABEL]  locking-scheme label recorded in the report
       [--checkpoint-dir D]    write crash-safe training checkpoints into D
       [--checkpoint-every N]  epochs between checkpoint writes (default 1)
       [--resume]        restore training from --checkpoint-dir and finish
                         bit-identical to an uninterrupted run
       [--clip-grad X]   clip each batch's mean gradient to L2 norm <= X
       [--save-model F]  save the trained DGCNN (CRC-guarded text format)
       [--simd MODE]     training kernel set: auto (default), avx2, scalar;
                         also settable via MUXLINK_SIMD. avx2 errors out on
                         hardware without AVX2+FMA instead of downgrading
       [--zoo]           serve/register trained models in the content-
                         addressed zoo; a repeated run mmaps the stored
                         weights and skips sampling + training entirely
       [--zoo-dir D]     registry directory (default: MUXLINK_ZOO env, else
                         ~/.cache/muxlink/zoo)
       [--warm-start R]  fine-tune from a zoo key or blob file instead of
                         training from scratch (implies --zoo)
       [--warm-epochs N] fine-tuning epoch budget (default epochs/4, min 1)
       [--warm-lr-scale X]  fine-tuning LR = --lr * X (default 0.1)
       [--no-score-cache]   disable the per-link score cache
       [--deterministic] run through the shared job runner and emit the
                         DETERMINISTIC manifest variant (no stage timings,
                         no metrics snapshot; byte-identical to the same
                         job run through muxlinkd at any worker count)
  untangle <locked.bench>                      UNTANGLE-style routing-query
       [--hops H] [--epochs E] [--lr L] ...    mode: per-tree argmax commit,
                                               never abstains; shares the
                                               attack flags minus --th and
                                               checkpointing
  campaign [--schemes A,B] [--circuits X,Y]    defense x attack sweep; one
       [--attacks muxlink,untangle]            manifest per cell + one
       [--key-bits N] [--scale S] [--seed S]   deterministic aggregate
       [--hops H] [--th T] [--epochs E]        (byte-identical for any
       [--lr L] [--links N] [--hd-patterns N]  --workers value)
       [--workers W] [--out-dir D] [--resume]
       [--zoo] [--zoo-dir D] [--report F]
       [--fleet ADDR,ADDR,...]                 dispatch cells to muxlinkd
       [--fleet-spool D] [--fleet-hedge-ms N]  backends (muxlink-coord
       [--fleet-max-attempts N]                semantics; aggregate stays
       [--fleet-retry-budget N]                byte-identical to a local
       [--fleet-dispatch-timeout-ms N]         run)
       [--fleet-no-local-fallback]
  zoo list [--zoo-dir D]                       registry entries, LRU first
  zoo info <key> [--zoo-dir D]                 one entry's stored metadata
  zoo gc --max-bytes N [--zoo-dir D]           evict LRU entries over budget
  zoo pin|unpin <key> [--zoo-dir D]            protect an entry from gc
  saam <locked.bench>                          structural SAAM attack
  scope <locked.bench>                         unsupervised SCOPE attack
  hd <a.bench> <b.bench> [--patterns N]        output Hamming distance
       [--key BITSTRING] [--threads N]         (key pins for b's keyinputs)

daemon client (MXRPC1 over unix socket or tcp; see muxlinkd --help):
  submit <locked.bench> [--attack muxlink|untangle] [attack flags]
       [--timeout S] [--daemon ADDR] [--wait] [--report F] [--key-out F]
                                               queue a job on a muxlinkd
  status <job-id> [--daemon ADDR]              job lifecycle state
  result <job-id> [--daemon ADDR] [--wait]     fetch the result manifest
       [--report F] [--key-out F]
  cancel <job-id> [--daemon ADDR]              cancel a queued job
  daemon stats|shutdown [--daemon ADDR]        daemon.* metrics / drain

--daemon ADDR is unix:PATH, tcp:HOST:PORT, or a bare socket path
(default: MUXLINK_DAEMON env, else /tmp/muxlinkd-<uid>.sock).

--threads N caps the worker pool (default: MUXLINK_THREADS env or all
hardware threads). Results are bit-identical for any thread count.
)";
  return 1;
}

void write_text(const std::string& path, const std::string& text) {
  std::ofstream os(path);
  if (!os) throw std::runtime_error("cannot write '" + path + "'");
  os << text;
}

int cmd_gen(const CliArgs& args) {
  args.allow_only({"scale", "out"});
  if (args.positional().size() != 1) return usage();
  const auto nl =
      circuitgen::make_benchmark(args.positional()[0], args.get_double("scale", 1.0));
  if (const auto out = args.get("out")) {
    write_design(nl, *out);
    std::cout << "wrote " << *out << "\n";
  } else {
    std::cout << netlist::write_bench(nl);
  }
  return 0;
}

int cmd_stats(const CliArgs& args) {
  args.allow_only({});
  if (args.positional().size() != 1) return usage();
  const auto nl = read_design(args.positional()[0]);
  std::cout << nl.name() << ": " << netlist::format_stats(netlist::compute_stats(nl));
  const auto keys = attacks::find_key_inputs(nl);
  if (!keys.empty()) std::cout << "  key inputs: " << keys.size() << "\n";
  return 0;
}

int cmd_lock(const CliArgs& args) {
  args.allow_only({"scheme", "key-bits", "seed", "out", "key-out", "allow-partial"});
  if (args.positional().size() != 1) return usage();
  const auto nl = read_design(args.positional()[0]);
  locking::MuxLockOptions opts;
  opts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 64));
  opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  opts.allow_partial = args.has("allow-partial");
  const std::string scheme = args.get_or("scheme", "dmux");
  // resolve_scheme throws std::invalid_argument (exit 1) listing the valid
  // names — the same resolver campaign and the zoo key labeling go through.
  const locking::LockedDesign d = locking::resolve_scheme(scheme)(nl, opts);
  std::cout << "locked with " << d.key_size() << " key bits (" << d.scheme
            << "); key = " << d.key_string() << "\n";
  if (const auto out = args.get("out")) {
    write_design(d.netlist, *out);
    std::cout << "wrote " << *out << "\n";
  } else {
    std::cout << netlist::write_bench(d.netlist);
  }
  if (const auto key_out = args.get("key-out")) write_text(*key_out, d.key_string() + "\n");
  return 0;
}

std::string render_key(const std::vector<locking::KeyBit>& key) {
  std::string s;
  for (locking::KeyBit b : key) s.push_back(locking::to_char(b));
  return s;
}

// --truth-key accepts either a file holding the bitstring or the bitstring
// itself.
std::vector<std::uint8_t> read_truth_key(const std::string& value) {
  std::string text = value;
  if (std::ifstream is(value); is) {
    std::getline(is, text);
  }
  std::vector<std::uint8_t> bits;
  bits.reserve(text.size());
  for (char c : text) {
    if (c == '0' || c == '1') {
      bits.push_back(static_cast<std::uint8_t>(c - '0'));
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      throw std::invalid_argument("--truth-key: '" + value +
                                  "' is neither a readable file nor a bitstring");
    }
  }
  if (bits.empty()) throw std::invalid_argument("--truth-key: empty key");
  return bits;
}

// HD between the original design and the recovered one. Undeciphered key
// bits leave their key inputs free in `recovered`; following the paper's
// Fig. 8 protocol, the HD is averaged over completions of those bits
// (enumerated up to 2^4, sampled beyond that).
double report_hd_percent(const netlist::Netlist& orig, const netlist::Netlist& recovered,
                         std::size_t patterns, std::uint64_t seed) {
  sim::HammingOptions hopts;
  hopts.num_patterns = patterns;
  // The undecided key inputs are whatever inputs the recovered design has
  // beyond the original's (find_key_inputs needs contiguous indices, which
  // a partially recovered design no longer has).
  std::vector<std::string> free_keys;
  for (netlist::GateId g : recovered.inputs()) {
    const std::string& name = recovered.gate(g).name;
    if (name.starts_with("keyinput")) free_keys.push_back(name);
  }
  if (free_keys.empty()) return sim::hamming_distance_percent(orig, recovered, hopts);
  const std::size_t n = free_keys.size();
  const bool enumerate = n <= 4;
  const std::size_t completions = enumerate ? (std::size_t{1} << n) : 16;
  std::mt19937_64 rng(seed);
  double sum = 0.0;
  for (std::size_t c = 0; c < completions; ++c) {
    hopts.extra_inputs_b.clear();
    const std::uint64_t bits = enumerate ? c : rng();
    for (std::size_t i = 0; i < n; ++i) {
      hopts.extra_inputs_b.emplace_back(free_keys[i], ((bits >> i) & 1) != 0);
    }
    sum += sim::hamming_distance_percent(orig, recovered, hopts);
  }
  return sum / static_cast<double>(completions);
}

// Builds the self-contained AttackJobSpec shared by `submit` and the
// --deterministic one-shot path: netlists are inlined as canonical BENCH
// text (Verilog inputs are converted), so the same spec means the same job
// whether it runs here or inside a muxlinkd worker.
core::AttackJobSpec spec_from_args(const CliArgs& args, const std::string& attack_name) {
  core::AttackJobSpec spec;
  spec.attack = attack_name;
  const auto locked = read_design(args.positional()[0]);
  spec.circuit = locked.name();
  spec.bench = netlist::write_bench(locked);
  spec.hops = static_cast<int>(args.get_long("hops", 3));
  if (attack_name == "muxlink") spec.threshold = args.get_double("th", 0.01);
  spec.epochs = static_cast<int>(args.get_long("epochs", 30));
  spec.learning_rate = args.get_double("lr", 1e-3);
  spec.max_train_links = static_cast<std::size_t>(args.get_long("links", 100000));
  spec.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  spec.scheme = args.get_or("scheme", "");
  if (!spec.scheme.empty()) locking::resolve_scheme(spec.scheme);
  spec.zoo_dir = args.get_or("zoo-dir", "");
  spec.use_zoo = args.has("zoo") || args.has("zoo-dir");
  spec.score_cache = !args.has("no-score-cache");
  if (const auto truth = args.get("truth-key")) {
    const auto bits = read_truth_key(*truth);
    spec.truth_key.reserve(bits.size());
    for (const auto b : bits) spec.truth_key.push_back(b != 0 ? '1' : '0');
  }
  if (const auto orig = args.get("orig")) {
    spec.orig_bench = netlist::write_bench(read_design(*orig));
  }
  spec.hd_patterns = static_cast<std::size_t>(args.get_long("patterns", 10000));
  return spec;
}

// attack/untangle --deterministic: run the job through the shared runner and
// report only scheduling-invariant data. --report then writes EXACTLY the
// bytes a muxlinkd worker would produce for the same spec.
int run_deterministic(const CliArgs& args, const std::string& attack_name) {
  for (const char* flag : {"telemetry", "checkpoint-dir", "checkpoint-every", "resume",
                           "clip-grad", "save-model", "warm-start", "warm-epochs",
                           "warm-lr-scale"}) {
    if (args.has(flag)) {
      throw std::invalid_argument(std::string("--") + flag +
                                  " is not available with --deterministic (it is not part of an "
                                  "AttackJobSpec)");
    }
  }
  const core::AttackJobSpec spec = spec_from_args(args, attack_name);
  const core::AttackJobOutcome outcome = core::run_attack_job(spec);
  std::cout << "deciphered key = " << outcome.key_string << "\n";
  std::cout << "deterministic manifest results (" << outcome.total_seconds << "s wall):\n";
  if (const auto* results = outcome.manifest.find("results")) {
    for (const auto& [name, value] : results->members()) {
      std::cout << "  " << name << " = " << value.dump() << "\n";
    }
  }
  if (const auto key_out = args.get("key-out")) write_text(*key_out, outcome.key_string + "\n");
  if (const auto out = args.get("recover")) {
    const auto locked = netlist::parse_bench(spec.bench, spec.circuit);
    write_design(core::recover_design(locked, outcome.key), *out);
    std::cout << "wrote " << *out << "\n";
  }
  if (const auto report = args.get("report")) {
    write_text(*report, outcome.manifest.dump_pretty() + "\n");
    std::cout << "wrote " << *report << "\n";
  }
  return 0;
}

int cmd_attack(const CliArgs& args) {
  args.allow_only({"hops", "th", "epochs", "lr", "links", "seed", "key-out", "recover",
                   "threads", "report", "telemetry", "truth-key", "orig", "scheme",
                   "patterns", "checkpoint-dir", "checkpoint-every", "resume", "clip-grad",
                   "save-model", "simd", "zoo", "zoo-dir", "warm-start", "warm-epochs",
                   "warm-lr-scale", "no-score-cache", "deterministic"});
  if (args.positional().size() != 1) return usage();
  if (const long t = args.get_long("threads", 0); t > 0) {
    common::set_num_threads(static_cast<std::size_t>(t));
  }
  if (const auto simd = args.get("simd")) {
    common::set_simd_mode(common::parse_simd_mode(*simd));
  }
  if (args.has("deterministic")) return run_deterministic(args, "muxlink");
  const auto locked = read_design(args.positional()[0]);
  core::MuxLinkOptions opts;
  opts.hops = static_cast<int>(args.get_long("hops", 3));
  opts.threshold = args.get_double("th", 0.01);
  opts.epochs = static_cast<int>(args.get_long("epochs", 30));
  opts.learning_rate = args.get_double("lr", 1e-3);
  opts.max_train_links = static_cast<std::size_t>(args.get_long("links", 100000));
  opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  opts.telemetry_path = args.get_or("telemetry", "");
  opts.checkpoint_dir = args.get_or("checkpoint-dir", "");
  opts.checkpoint_every = static_cast<int>(args.get_long("checkpoint-every", 1));
  opts.resume = args.has("resume");
  opts.clip_grad = args.get_double("clip-grad", 0.0);
  opts.model_out = args.get_or("save-model", "");
  opts.scheme = args.get_or("scheme", "");
  // The label is folded into the zoo key, so an unknown name would silently
  // shard the registry; validate through the shared resolver (exit 1).
  if (!opts.scheme.empty()) locking::resolve_scheme(opts.scheme);
  opts.zoo_dir = args.get_or("zoo-dir", "");
  opts.warm_start = args.get_or("warm-start", "");
  opts.warm_epochs = static_cast<int>(args.get_long("warm-epochs", 0));
  opts.warm_lr_scale = args.get_double("warm-lr-scale", 0.1);
  opts.use_zoo = args.has("zoo") || args.has("zoo-dir") || !opts.warm_start.empty();
  opts.score_cache = !args.has("no-score-cache");
  if (opts.resume && opts.checkpoint_dir.empty()) {
    throw std::invalid_argument("--resume requires --checkpoint-dir");
  }
  core::MuxLinkAttack attack(opts);
  const auto result = attack.run(locked);
  std::cout << "deciphered key = " << render_key(result.key) << "\n";
  std::cout << "trained on " << result.training_links << " links (val acc "
            << result.training.best_val_accuracy << "), " << result.total_seconds << "s total\n";
  std::cout << "stages: sample " << result.sample_seconds << "s, train " << result.train_seconds
            << "s, score " << result.score_seconds << "s (" << result.threads << " threads)\n";
  if (result.training.resumed_from_epoch > 0) {
    std::cout << "resumed from checkpoint at epoch " << result.training.resumed_from_epoch
              << "\n";
  }
  if (result.training.rollbacks > 0) {
    std::cout << "divergence rollbacks: " << result.training.rollbacks << "\n";
  }
  if (result.serving.zoo_enabled) {
    std::cout << "zoo " << (result.serving.zoo_hit ? "hit" : "miss") << " ("
              << result.serving.zoo_key << ")";
    if (result.serving.zoo_hit) {
      std::cout << ", " << result.serving.bytes_mapped << " bytes mapped";
    }
    if (result.serving.warm_start) std::cout << ", warm-started";
    if (result.serving.cache_hits + result.serving.cache_misses > 0) {
      std::cout << "; score cache " << result.serving.cache_hits << "/"
                << (result.serving.cache_hits + result.serving.cache_misses) << " hits";
    }
    std::cout << "\n";
  }
  if (const auto key_out = args.get("key-out")) write_text(*key_out, render_key(result.key) + "\n");

  std::optional<attacks::KeyPredictionScore> score;
  if (const auto truth = args.get("truth-key")) {
    const auto bits = read_truth_key(*truth);
    if (bits.size() != result.key.size()) {
      throw std::invalid_argument("--truth-key length " + std::to_string(bits.size()) +
                                  " != " + std::to_string(result.key.size()) + " deciphered bits");
    }
    score = attacks::score_key(bits, result.key);
    std::cout << "vs ground truth: " << score->to_string() << "\n";
  }

  std::optional<netlist::Netlist> recovered;
  if (args.has("recover") || args.has("orig")) {
    recovered = core::recover_design(locked, result.key);
  }
  if (const auto out = args.get("recover")) {
    write_design(*recovered, *out);
    std::cout << "wrote " << *out << "\n";
  }
  std::optional<double> hd;
  if (const auto orig_path = args.get("orig")) {
    const auto orig = read_design(*orig_path);
    hd = report_hd_percent(orig, *recovered,
                           static_cast<std::size_t>(args.get_long("patterns", 10000)), opts.seed);
    std::cout << "HD vs " << orig.name() << " = " << *hd << "%\n";
  }

  if (const auto report = args.get("report")) {
    common::RunManifest m = common::make_run_manifest("muxlink attack");
    m.seed = opts.seed;
    m.circuit = locked.name();
    m.scheme = args.get_or("scheme", "");
    m.key_bits = static_cast<std::int64_t>(result.key.size());
    m.add_stage("sample", result.sample_seconds);
    m.add_stage("train", result.train_seconds);
    m.add_stage("score", result.score_seconds);
    m.add_stage("total", result.total_seconds);
    m.add_result("best_val_accuracy", result.training.best_val_accuracy);
    m.add_result("training_links", static_cast<double>(result.training_links));
    m.add_result("target_links", static_cast<double>(result.target_links));
    std::size_t undecided = 0;
    for (locking::KeyBit b : result.key) undecided += b == locking::KeyBit::kUnknown ? 1 : 0;
    m.add_result("key_bits_decided", static_cast<double>(result.key.size() - undecided));
    m.add_result("key_bits_undecided", static_cast<double>(undecided));
    if (score) {
      m.add_result("accuracy_percent", score->accuracy_percent());
      m.add_result("precision_percent", score->precision_percent());
      m.add_result("kpa_percent", score->kpa_percent());
    }
    if (hd) m.add_result("hd_percent", *hd);
    m.telemetry_path = opts.telemetry_path;
    common::Json extra = common::Json::object();
    extra["hops"] = opts.hops;
    extra["threshold"] = opts.threshold;
    extra["epochs"] = opts.epochs;
    extra["learning_rate"] = opts.learning_rate;
    extra["sortpool_k"] = result.sortpool_k;
    extra["feature_dim"] = result.feature_dim;
    extra["deciphered_key"] = render_key(result.key);
    extra["rollbacks"] = result.training.rollbacks;
    extra["resumed_from_epoch"] = result.training.resumed_from_epoch;
    extra["cpu"] = gnn::cpu_info_json();
    if (result.serving.zoo_enabled) {
      common::Json serving = common::Json::object();
      serving["zoo_hit"] = result.serving.zoo_hit;
      serving["warm_start"] = result.serving.warm_start;
      serving["zoo_key"] = result.serving.zoo_key;
      serving["cache_hits"] = result.serving.cache_hits;
      serving["cache_misses"] = result.serving.cache_misses;
      serving["bytes_mapped"] = static_cast<long long>(result.serving.bytes_mapped);
      extra["serving"] = std::move(serving);
    }
    m.extra = std::move(extra);
    m.observability = common::observability_to_json();
    write_text(*report, m.to_json().dump_pretty() + "\n");
    std::cout << "wrote " << *report << "\n";
  }
  return 0;
}

// muxlink untangle — UNTANGLE-style routing-query mode over the shared
// scoring engine: per-tree argmax commit, no δ abstention.
int cmd_untangle(const CliArgs& args) {
  args.allow_only({"hops", "epochs", "lr", "links", "seed", "key-out", "recover", "threads",
                   "report", "truth-key", "orig", "scheme", "patterns", "simd", "zoo",
                   "zoo-dir", "no-score-cache", "deterministic"});
  if (args.positional().size() != 1) return usage();
  if (const long t = args.get_long("threads", 0); t > 0) {
    common::set_num_threads(static_cast<std::size_t>(t));
  }
  if (const auto simd = args.get("simd")) {
    common::set_simd_mode(common::parse_simd_mode(*simd));
  }
  if (args.has("deterministic")) return run_deterministic(args, "untangle");
  const auto locked = read_design(args.positional()[0]);
  core::MuxLinkOptions opts;
  opts.hops = static_cast<int>(args.get_long("hops", 3));
  opts.epochs = static_cast<int>(args.get_long("epochs", 30));
  opts.learning_rate = args.get_double("lr", 1e-3);
  opts.max_train_links = static_cast<std::size_t>(args.get_long("links", 100000));
  opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  opts.scheme = args.get_or("scheme", "");
  if (!opts.scheme.empty()) locking::resolve_scheme(opts.scheme);
  opts.zoo_dir = args.get_or("zoo-dir", "");
  opts.use_zoo = args.has("zoo") || args.has("zoo-dir");
  opts.score_cache = !args.has("no-score-cache");
  core::UntangleAttack attack(opts);
  const auto result = attack.run(locked);
  std::cout << "deciphered key = " << render_key(result.key) << "\n";
  std::cout << result.queries.size() << " routing queries over " << result.target_links
            << " candidate wires; trained on " << result.training_links << " links (val acc "
            << result.training.best_val_accuracy << "), " << result.total_seconds
            << "s total\n";
  if (result.serving.zoo_enabled) {
    std::cout << "zoo " << (result.serving.zoo_hit ? "hit" : "miss") << " ("
              << result.serving.zoo_key << ")\n";
  }
  if (const auto key_out = args.get("key-out")) write_text(*key_out, render_key(result.key) + "\n");

  std::optional<attacks::KeyPredictionScore> score;
  if (const auto truth = args.get("truth-key")) {
    const auto bits = read_truth_key(*truth);
    if (bits.size() != result.key.size()) {
      throw std::invalid_argument("--truth-key length " + std::to_string(bits.size()) +
                                  " != " + std::to_string(result.key.size()) + " deciphered bits");
    }
    score = attacks::score_key(bits, result.key);
    std::cout << "vs ground truth: " << score->to_string() << "\n";
  }

  std::optional<netlist::Netlist> recovered;
  if (args.has("recover") || args.has("orig")) {
    recovered = core::recover_design(locked, result.key);
  }
  if (const auto out = args.get("recover")) {
    write_design(*recovered, *out);
    std::cout << "wrote " << *out << "\n";
  }
  std::optional<double> hd;
  if (const auto orig_path = args.get("orig")) {
    const auto orig = read_design(*orig_path);
    hd = report_hd_percent(orig, *recovered,
                           static_cast<std::size_t>(args.get_long("patterns", 10000)), opts.seed);
    std::cout << "HD vs " << orig.name() << " = " << *hd << "%\n";
  }

  if (const auto report = args.get("report")) {
    common::RunManifest m = common::make_run_manifest("muxlink untangle");
    m.seed = opts.seed;
    m.circuit = locked.name();
    m.scheme = args.get_or("scheme", "");
    m.key_bits = static_cast<std::int64_t>(result.key.size());
    m.add_stage("sample", result.sample_seconds);
    m.add_stage("train", result.train_seconds);
    m.add_stage("score", result.score_seconds);
    m.add_stage("total", result.total_seconds);
    m.add_result("best_val_accuracy", result.training.best_val_accuracy);
    m.add_result("training_links", static_cast<double>(result.training_links));
    m.add_result("target_links", static_cast<double>(result.target_links));
    m.add_result("routing_queries", static_cast<double>(result.queries.size()));
    std::size_t undecided = 0;
    for (locking::KeyBit b : result.key) undecided += b == locking::KeyBit::kUnknown ? 1 : 0;
    m.add_result("key_bits_decided", static_cast<double>(result.key.size() - undecided));
    m.add_result("key_bits_undecided", static_cast<double>(undecided));
    if (score) {
      m.add_result("accuracy_percent", score->accuracy_percent());
      m.add_result("precision_percent", score->precision_percent());
      m.add_result("kpa_percent", score->kpa_percent());
    }
    if (hd) m.add_result("hd_percent", *hd);
    common::Json extra = common::Json::object();
    extra["hops"] = opts.hops;
    extra["epochs"] = opts.epochs;
    extra["deciphered_key"] = render_key(result.key);
    m.extra = std::move(extra);
    m.observability = common::observability_to_json();
    write_text(*report, m.to_json().dump_pretty() + "\n");
    std::cout << "wrote " << *report << "\n";
  }
  return 0;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// muxlink campaign — the defense x attack sweep (eval/campaign.h).
int cmd_campaign(const CliArgs& args) {
  args.allow_only({"schemes", "circuits", "attacks", "key-bits", "scale", "seed", "hops", "th",
                   "epochs", "lr", "links", "hd-patterns", "workers", "out-dir", "zoo",
                   "zoo-dir", "resume", "report", "fleet", "fleet-spool", "fleet-hedge-ms",
                   "fleet-max-attempts", "fleet-retry-budget", "fleet-dispatch-timeout-ms",
                   "fleet-no-local-fallback"});
  if (!args.positional().empty()) return usage();
  eval::CampaignOptions opts;
  if (const auto v = args.get("schemes")) opts.schemes = split_list(*v);
  if (const auto v = args.get("circuits")) opts.circuits = split_list(*v);
  if (const auto v = args.get("attacks")) opts.attacks = split_list(*v);
  opts.key_bits = static_cast<std::size_t>(args.get_long("key-bits", 16));
  opts.circuit_scale = args.get_double("scale", 1.0);
  opts.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
  opts.hops = static_cast<int>(args.get_long("hops", 2));
  opts.threshold = args.get_double("th", 0.01);
  opts.epochs = static_cast<int>(args.get_long("epochs", 10));
  opts.learning_rate = args.get_double("lr", 1e-3);
  opts.max_train_links = static_cast<std::size_t>(args.get_long("links", 100000));
  opts.hd_patterns = static_cast<std::size_t>(args.get_long("hd-patterns", 2000));
  opts.out_dir = args.get_or("out-dir", "campaign");
  opts.zoo_dir = args.get_or("zoo-dir", "");
  opts.use_zoo = args.has("zoo") || args.has("zoo-dir");
  opts.resume = args.has("resume");
  // Fleet mode (DESIGN.md §14): dispatch every cell's attack to these
  // muxlinkd backends. The aggregate stays byte-identical to a local run.
  if (const auto v = args.get("fleet")) opts.fleet_backends = split_list(*v);
  opts.fleet_spool_dir = args.get_or("fleet-spool", "");
  opts.fleet_hedge_after_ms = static_cast<int>(args.get_long("fleet-hedge-ms", 0));
  opts.fleet_max_attempts = static_cast<int>(args.get_long("fleet-max-attempts", 4));
  opts.fleet_retry_budget = static_cast<int>(args.get_long("fleet-retry-budget", 64));
  opts.fleet_dispatch_timeout_ms = args.get_long("fleet-dispatch-timeout-ms", 0);
  opts.fleet_local_fallback = !args.has("fleet-no-local-fallback");
  if (const long w = args.get_long("workers", 0); w > 0) {
    common::set_num_threads(static_cast<std::size_t>(w));
  }

  const auto result = eval::run_campaign(opts);

  eval::Table table({"scheme", "circuit", "attack", "K", "AC%", "PC%", "KPA%", "HD%"});
  for (const auto& c : result.cells) {
    table.add_row({c.scheme, c.circuit, c.attack, std::to_string(c.key_bits),
                   eval::Table::num(c.accuracy_percent), eval::Table::num(c.precision_percent),
                   eval::Table::num(c.kpa_percent), eval::Table::num(c.hd_percent)});
  }
  std::cout << table.to_string();
  std::cout << result.cells.size() << " cells (" << result.resumed_cells
            << " resumed), aggregate manifest: " << result.aggregate_path << "\n";
  if (const auto report = args.get("report")) {
    write_text(*report, result.aggregate.to_json().dump_pretty() + "\n");
    std::cout << "wrote " << *report << "\n";
  }
  return 0;
}

// muxlink zoo <list|info|gc|pin|unpin> — registry maintenance.
int cmd_zoo(const CliArgs& args) {
  args.allow_only({"zoo-dir", "max-bytes"});
  if (args.positional().empty()) return usage();
  const std::string verb = args.positional()[0];
  const zoo::Registry registry(zoo::Registry::resolve_dir(args.get_or("zoo-dir", "")));

  if (verb == "list") {
    if (args.positional().size() != 1) return usage();
    const auto entries = registry.list();
    std::uintmax_t total = 0;
    for (const auto& e : entries) {
      std::cout << (e.pinned ? "* " : "  ") << e.key << "  " << e.bytes << " bytes\n";
      total += e.bytes;
    }
    std::cout << entries.size() << " entries, " << total << " bytes in " << registry.dir()
              << " (* = pinned, least recently used first)\n";
    return 0;
  }
  if (verb == "info") {
    if (args.positional().size() != 2) return usage();
    const std::string& key = args.positional()[1];
    const auto path = registry.entry_path(key);
    std::cout << zoo::read_blob_meta(path).dump_pretty() << "\n";
    std::cout << "path: " << path << (registry.pinned(key) ? " (pinned)" : "") << "\n";
    return 0;
  }
  if (verb == "gc") {
    if (args.positional().size() != 1) return usage();
    const auto max_bytes = args.get_long("max-bytes", -1);
    if (max_bytes < 0) throw std::invalid_argument("zoo gc requires --max-bytes");
    const auto r = registry.gc(static_cast<std::uintmax_t>(max_bytes));
    for (const auto& key : r.evicted) std::cout << "evicted " << key << "\n";
    std::cout << "freed " << r.bytes_freed << " bytes, kept " << r.bytes_kept << "\n";
    return 0;
  }
  if (verb == "pin" || verb == "unpin") {
    if (args.positional().size() != 2) return usage();
    const std::string& key = args.positional()[1];
    if (!registry.contains(key)) {
      throw zoo::ZooError("no registry entry '" + key + "' in " + registry.dir().string());
    }
    if (verb == "pin") {
      registry.pin(key);
    } else {
      registry.unpin(key);
    }
    std::cout << (verb == "pin" ? "pinned " : "unpinned ") << key << "\n";
    return 0;
  }
  return usage();
}

int cmd_simple_attack(const CliArgs& args, bool saam) {
  args.allow_only({});
  if (args.positional().size() != 1) return usage();
  const auto locked = read_design(args.positional()[0]);
  const auto key = saam ? attacks::saam_attack(locked) : attacks::scope_attack(locked);
  std::cout << "deciphered key = " << render_key(key) << "\n";
  return 0;
}

int cmd_hd(const CliArgs& args) {
  args.allow_only({"patterns", "key", "threads"});
  if (args.positional().size() != 2) return usage();
  if (const long t = args.get_long("threads", 0); t > 0) {
    common::set_num_threads(static_cast<std::size_t>(t));
  }
  const auto a = read_design(args.positional()[0]);
  const auto b = read_design(args.positional()[1]);
  sim::HammingOptions opts;
  opts.num_patterns = static_cast<std::size_t>(args.get_long("patterns", 100000));
  if (const auto key = args.get("key")) {
    const auto keys = attacks::find_key_inputs(b);
    if (keys.size() != key->size()) {
      std::cerr << "--key length " << key->size() << " != " << keys.size()
                << " key inputs in " << b.name() << "\n";
      return 1;
    }
    for (std::size_t i = 0; i < keys.size(); ++i) {
      opts.extra_inputs_b.emplace_back(keys[i].name, (*key)[i] == '1');
    }
  }
  std::cout << "HD = " << sim::hamming_distance_percent(a, b, opts) << "%\n";
  return 0;
}

// --- daemon client commands (MXRPC1; DESIGN.md §13) -------------------------

daemon::DaemonClient make_client(const CliArgs& args) {
  daemon::ClientOptions copts;
  copts.address = args.get_or("daemon", "");
  return daemon::DaemonClient(std::move(copts));
}

// Handles a RESULT_OK reply: prints the state, writes --report/--key-out on
// DONE. Exit 0 when the job succeeded, 2 when it FAILED/TIMEOUT/CANCELLED,
// 0 with just the state line when it is still in flight.
int render_result_reply(const CliArgs& args, const common::Json& reply) {
  const std::string state = reply.string_or("state", "?");
  std::cout << reply.string_or("job_id", "?") << ": " << state << "\n";
  if (state == "DONE") {
    std::cout << "deciphered key = " << reply.string_or("key", "") << "\n";
    if (const auto key_out = args.get("key-out")) {
      write_text(*key_out, reply.string_or("key", "") + "\n");
    }
    if (const common::Json* manifest = reply.find("manifest")) {
      if (const auto report = args.get("report")) {
        write_text(*report, manifest->dump_pretty() + "\n");
        std::cout << "wrote " << *report << "\n";
      } else if (const auto* results = manifest->find("results")) {
        for (const auto& [name, value] : results->members()) {
          std::cout << "  " << name << " = " << value.dump() << "\n";
        }
      }
    }
    return 0;
  }
  if (const auto* err = reply.find("error"); err && err->is_string()) {
    std::cout << "error: " << err->as_string() << "\n";
  }
  return state == "QUEUED" || state == "RUNNING" ? 0 : 2;
}

int cmd_submit(const CliArgs& args) {
  args.allow_only({"attack", "hops", "th", "epochs", "lr", "links", "seed", "scheme",
                   "truth-key", "orig", "patterns", "zoo", "zoo-dir", "no-score-cache",
                   "timeout", "daemon", "wait", "report", "key-out", "poll-ms"});
  if (args.positional().size() != 1) return usage();
  const std::string attack_name = args.get_or("attack", "muxlink");
  core::AttackJobSpec spec = spec_from_args(args, attack_name);
  spec.timeout_seconds = args.get_double("timeout", 0.0);
  auto client = make_client(args);
  const std::string job_id = client.submit(spec);
  std::cout << "submitted " << job_id << " (" << spec.attack << " on " << spec.circuit << ") to "
            << client.address() << "\n";
  if (!args.has("wait")) return 0;
  const auto reply =
      client.wait_for_result(job_id, static_cast<int>(args.get_long("poll-ms", 100)));
  return render_result_reply(args, reply);
}

int cmd_status(const CliArgs& args) {
  args.allow_only({"daemon"});
  if (args.positional().size() != 1) return usage();
  auto client = make_client(args);
  const auto reply = client.status(args.positional()[0]);
  std::cout << reply.string_or("job_id", "?") << ": " << reply.string_or("state", "?");
  if (const auto* pos = reply.find("queue_position")) {
    std::cout << " (queue position " << pos->as_int() << ")";
  }
  if (const auto* wall = reply.find("wall_seconds")) {
    std::cout << " (" << wall->as_double() << "s)";
  }
  if (const auto* err = reply.find("error"); err && err->is_string()) {
    std::cout << " — " << err->as_string();
  }
  std::cout << "\n";
  return 0;
}

int cmd_result(const CliArgs& args) {
  args.allow_only({"daemon", "wait", "report", "key-out", "poll-ms"});
  if (args.positional().size() != 1) return usage();
  auto client = make_client(args);
  const std::string& job_id = args.positional()[0];
  const auto reply =
      args.has("wait")
          ? client.wait_for_result(job_id, static_cast<int>(args.get_long("poll-ms", 100)))
          : client.result(job_id);
  return render_result_reply(args, reply);
}

int cmd_cancel(const CliArgs& args) {
  args.allow_only({"daemon"});
  if (args.positional().size() != 1) return usage();
  auto client = make_client(args);
  const auto reply = client.cancel(args.positional()[0]);
  std::cout << reply.string_or("job_id", "?") << ": " << reply.string_or("state", "?") << "\n";
  return 0;
}

int cmd_daemon(const CliArgs& args) {
  args.allow_only({"daemon"});
  if (args.positional().size() != 1) return usage();
  const std::string& verb = args.positional()[0];
  auto client = make_client(args);
  if (verb == "stats") {
    std::cout << client.stats().dump_pretty() << "\n";
    return 0;
  }
  if (verb == "shutdown") {
    client.shutdown();
    std::cout << client.address() << " is draining\n";
    return 0;
  }
  return usage();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  const CliArgs args(argc - 2, argv + 2);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "stats") return cmd_stats(args);
    if (cmd == "lock") return cmd_lock(args);
    if (cmd == "attack") return cmd_attack(args);
    if (cmd == "untangle") return cmd_untangle(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "zoo") return cmd_zoo(args);
    if (cmd == "saam") return cmd_simple_attack(args, true);
    if (cmd == "scope") return cmd_simple_attack(args, false);
    if (cmd == "hd") return cmd_hd(args);
    if (cmd == "submit") return cmd_submit(args);
    if (cmd == "status") return cmd_status(args);
    if (cmd == "result") return cmd_result(args);
    if (cmd == "cancel") return cmd_cancel(args);
    if (cmd == "daemon") return cmd_daemon(args);
    return usage();
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const daemon::ProtocolError& e) {
    std::cerr << "protocol error: " << e.what() << "\n";
    return 6;
  } catch (const daemon::DaemonError& e) {
    std::cerr << "daemon error: " << e.what() << "\n";
    return 6;
  } catch (const gnn::ModelFormatError& e) {
    std::cerr << "model format error: " << e.what() << "\n";
    return 4;
  } catch (const zoo::ZooError& e) {  // zoo blobs are model files too
    std::cerr << "model format error: " << e.what() << "\n";
    return 4;
  } catch (const gnn::CheckpointError& e) {
    std::cerr << "checkpoint error: " << e.what() << "\n";
    return 5;
  } catch (const netlist::NetlistError& e) {  // BENCH/Verilog parse included
    std::cerr << "input error: " << e.what() << "\n";
    return 3;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
