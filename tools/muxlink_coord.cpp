// muxlink-coord — fan attack jobs out to a fleet of muxlinkd backends
// (DESIGN.md §14).
//
//   muxlink-coord --backends ADDR,ADDR,... [options] <locked.bench>...
//   muxlink-coord --backends ADDR,ADDR,... --probe
//
// Each BENCH file becomes one AttackJobSpec dispatched through the fleet
// coordinator: per-backend health heartbeats with a three-state circuit
// breaker, retry with decorrelated-jitter backoff, failover re-dispatch,
// optional hedging, and graceful degradation to local in-process execution.
// Results are byte-identical to running the same job anywhere else (the
// deterministic job contract), so retries and failover never change output.
//
// --probe skips jobs: it heartbeats the fleet once and reports per-backend
// health (exit 0 if at least one backend is healthy, 2 otherwise).
//
// Exit codes follow the muxlink CLI taxonomy: 0 ok, 1 usage, 2 runtime
// (any job failed / no healthy backend under --probe).
#include <chrono>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <thread>
#include <vector>

#include "common/json.h"
#include "fleet/coordinator.h"
#include "muxlink/job.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;
using tools::CliArgs;

int usage() {
  std::cerr <<
      R"(usage: muxlink-coord --backends ADDR,ADDR,... [options] <locked.bench>...

  --backends A,B,...  muxlinkd addresses (unix:PATH or tcp:HOST:PORT); jobs
                      fail over between them, ejected backends are probed
                      for re-admission
  --probe             no jobs: heartbeat the fleet once and report health
                      (exit 0 if any backend is healthy, 2 otherwise)

attack knobs (one job per BENCH file):
  --attack A          muxlink | untangle (default muxlink)
  --scheme S          locking-scheme label folded into zoo keys
  --hops H --th T --epochs E --lr L --links N --seed S
  --zoo [--zoo-dir D] serve trained models from the zoo

fleet knobs:
  --priority P        campaign | interactive | bulk (default interactive)
  --max-attempts N    dispatches per job incl. the first (default 4)
  --retry-budget N    fleet-wide re-dispatch allowance (default 64)
  --dispatch-timeout-ms N  per-dispatch failover deadline (0 = none)
  --hedge-ms N        speculative second dispatch after N ms (0 = off)
  --heartbeat-ms N    breaker probe cadence (default 500)
  --no-local-fallback fail jobs instead of running locally when the whole
                      fleet is ejected
  --spool D           durable results spool (--spool-max-bytes N /
                      --spool-ttl S retention, unfetched results spared)

output:
  --out-dir D         write each job's manifest to D/<job-id>.json
  --stats             print fleet stats JSON (breaker states, retries,
                      duplicates) after the jobs finish
)";
  return 1;
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : csv) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::string slurp(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read '" + path + "'");
  std::stringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"backends", "probe", "attack", "scheme", "hops", "th", "epochs", "lr",
                     "links", "seed", "zoo", "zoo-dir", "priority", "max-attempts",
                     "retry-budget", "dispatch-timeout-ms", "hedge-ms", "heartbeat-ms",
                     "no-local-fallback", "spool", "spool-max-bytes", "spool-ttl", "out-dir",
                     "stats", "help"});
    if (args.has("help")) return usage();

    fleet::FleetOptions fopts;
    fopts.backends = split_list(args.get_or("backends", ""));
    if (fopts.backends.empty()) {
      std::cerr << "error: --backends is required\n";
      return usage();
    }
    fopts.max_attempts_per_job = static_cast<int>(args.get_long("max-attempts", 4));
    fopts.retry_budget = static_cast<int>(args.get_long("retry-budget", 64));
    fopts.dispatch_timeout_ms = args.get_long("dispatch-timeout-ms", 0);
    fopts.hedge_after_ms = static_cast<int>(args.get_long("hedge-ms", 0));
    fopts.heartbeat_interval_ms = static_cast<int>(args.get_long("heartbeat-ms", 500));
    fopts.allow_local_fallback = !args.has("no-local-fallback");
    fopts.spool_dir = args.get_or("spool", "");
    fopts.spool_max_bytes = static_cast<std::uint64_t>(args.get_long("spool-max-bytes", 0));
    fopts.spool_ttl_seconds = args.get_long("spool-ttl", 0);

    fleet::Priority prio = fleet::Priority::kInteractive;
    const std::string prio_name = args.get_or("priority", "interactive");
    if (prio_name == "campaign") {
      prio = fleet::Priority::kCampaign;
    } else if (prio_name == "bulk") {
      prio = fleet::Priority::kBulk;
    } else if (prio_name != "interactive") {
      throw std::invalid_argument("unknown --priority '" + prio_name +
                                  "' (valid: campaign, interactive, bulk)");
    }

    if (args.has("probe")) {
      if (!args.positional().empty()) return usage();
      fleet::FleetCoordinator coord(fopts);
      coord.start();
      // One full heartbeat round covers every backend; wait out two
      // cadences plus the probe timeout so each address is visited.
      std::this_thread::sleep_for(std::chrono::milliseconds(
          2 * fopts.heartbeat_interval_ms + fopts.heartbeat_timeout_ms));
      bool any_healthy = false;
      for (const std::string& addr : fopts.backends) {
        const fleet::BackendHealth h = coord.backend_health(addr);
        any_healthy = any_healthy || h == fleet::BackendHealth::kHealthy;
        std::cout << addr << " " << fleet::to_string(h) << "\n";
      }
      coord.stop();
      return any_healthy ? 0 : 2;
    }

    if (args.positional().empty()) return usage();

    std::vector<core::AttackJobSpec> specs;
    for (const std::string& path : args.positional()) {
      core::AttackJobSpec spec;
      spec.attack = args.get_or("attack", "muxlink");
      spec.circuit = std::filesystem::path(path).stem().string();
      spec.bench = slurp(path);
      spec.hops = static_cast<int>(args.get_long("hops", 3));
      spec.threshold = args.get_double("th", 0.01);
      spec.epochs = static_cast<int>(args.get_long("epochs", 30));
      spec.learning_rate = args.get_double("lr", 1e-3);
      spec.max_train_links = static_cast<std::size_t>(args.get_long("links", 100000));
      spec.seed = static_cast<std::uint64_t>(args.get_long("seed", 1));
      spec.scheme = args.get_or("scheme", "");
      spec.use_zoo = args.has("zoo") || args.has("zoo-dir");
      spec.zoo_dir = args.get_or("zoo-dir", "");
      specs.push_back(std::move(spec));
    }

    fleet::FleetCoordinator coord(fopts);
    coord.start();
    std::vector<std::string> ids;
    for (const auto& spec : specs) ids.push_back(coord.submit(spec, prio));

    const std::string out_dir = args.get_or("out-dir", "");
    if (!out_dir.empty()) std::filesystem::create_directories(out_dir);
    int failed = 0;
    for (std::size_t i = 0; i < ids.size(); ++i) {
      const fleet::FleetJobResult r = coord.wait(ids[i]);
      if (r.ok) {
        std::cout << r.job_id << " " << args.positional()[i] << " DONE on " << r.backend << " ("
                  << r.attempts << " attempt" << (r.attempts == 1 ? "" : "s")
                  << ") key=" << r.key_string << "\n";
        if (!out_dir.empty()) {
          const auto path = std::filesystem::path(out_dir) / (r.job_id + ".json");
          std::ofstream os(path);
          if (!os) throw std::runtime_error("cannot write '" + path.string() + "'");
          os << r.manifest.dump_pretty() << "\n";
        }
      } else {
        ++failed;
        std::cout << r.job_id << " " << args.positional()[i] << " FAILED after " << r.attempts
                  << " attempt" << (r.attempts == 1 ? "" : "s") << ": " << r.error << "\n";
      }
    }
    if (args.has("stats")) std::cout << coord.stats_json().dump_pretty() << "\n";
    coord.stop();
    return failed == 0 ? 0 : 2;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
