// muxlinkd — the MuxLink attack-as-a-service daemon (DESIGN.md §13).
//
//   muxlinkd [--socket PATH] [--listen HOST:PORT] [--workers N]
//            [--max-queue N] [--job-timeout S] [--zoo-dir D]
//            [--max-frame-mb N] [--spool D] [--spool-max-bytes N]
//            [--spool-ttl S] [--threads N]
//
// Runs in the foreground (supervisors own daemonization) serving MXRPC1 on
// a unix socket (default /tmp/muxlinkd-<uid>.sock) and optionally TCP.
// SIGTERM/SIGINT start a graceful drain: queued jobs are cancelled, running
// jobs finish, then the process exits 0. Exit codes follow the muxlink CLI
// taxonomy: 1 usage, 6 daemon/protocol setup failures.
#include <csignal>
#include <cstdlib>
#include <iostream>

#include <unistd.h>

#include "common/thread_pool.h"
#include "daemon/net.h"
#include "daemon/server.h"
#include "tools/cli_args.h"

namespace {

using namespace muxlink;
using tools::CliArgs;

volatile std::sig_atomic_t g_signal = 0;

void on_signal(int sig) { g_signal = sig; }

int usage() {
  std::cerr <<
      R"(usage: muxlinkd [options]

  --socket PATH      unix socket to serve on (default: MUXLINK_DAEMON env,
                     else /tmp/muxlinkd-<uid>.sock; "none" disables)
  --listen HOST:PORT additionally serve MXRPC1 over TCP (port 0 picks an
                     ephemeral port, printed on startup)
  --workers N        compute workers = concurrent jobs (default 2)
  --max-queue N      queued-job bound; submits beyond it are refused with
                     QUEUE_FULL (default 64)
  --job-timeout S    server-side wall-clock cap per job, seconds (0 = none);
                     tighter of this and the job's own timeout wins
  --zoo-dir D        model zoo served to jobs that request --zoo without
                     naming a directory (default: MUXLINK_ZOO resolution)
  --max-frame-mb N   MXRPC1 frame ceiling in MiB (default 64)
  --spool D          write each completed job's manifest to D/<job-id>.json
  --spool-max-bytes N cap the spool directory at N bytes; fetched results are
                     removed oldest-first once over budget, results never yet
                     fetched are always spared (0 = unbounded, default)
  --spool-ttl S      remove fetched spool entries older than S seconds
                     (0 = keep forever, default)
  --wait-result-cap MS
                     server-side ceiling on one WAIT_RESULT long-poll slice
                     (default 5000); longer client waits re-issue
  --threads N        cap the shared compute pool (default: MUXLINK_THREADS
                     env or all hardware threads); results are bit-identical
                     for any value

SIGTERM/SIGINT drain gracefully: queued jobs are cancelled, running jobs
finish, then muxlinkd exits 0.
)";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"socket", "listen", "workers", "max-queue", "job-timeout", "zoo-dir",
                     "max-frame-mb", "spool", "spool-max-bytes", "spool-ttl", "wait-result-cap",
                     "threads", "help"});
    if (args.has("help") || !args.positional().empty()) return usage();
    if (const long t = args.get_long("threads", 0); t > 0) {
      common::set_num_threads(static_cast<std::size_t>(t));
    }

    daemon::DaemonOptions opts;
    std::string socket = args.get_or("socket", "");
    if (socket.empty()) {
      const daemon::Address def = daemon::parse_address(daemon::default_address());
      socket = def.kind == daemon::Address::Kind::kUnix ? def.path : "";
    }
    if (socket != "none") opts.socket_path = socket;
    opts.tcp_listen = args.get_or("listen", "");
    opts.workers = static_cast<int>(args.get_long("workers", 2));
    opts.max_queue = static_cast<std::size_t>(args.get_long("max-queue", 64));
    opts.job_timeout_seconds = args.get_double("job-timeout", 0.0);
    opts.zoo_dir = args.get_or("zoo-dir", "");
    opts.max_frame_bytes = static_cast<std::size_t>(args.get_long("max-frame-mb", 64)) << 20;
    opts.spool_dir = args.get_or("spool", "");
    opts.spool_max_bytes = static_cast<std::uint64_t>(args.get_long("spool-max-bytes", 0));
    opts.spool_ttl_seconds = args.get_long("spool-ttl", 0);
    opts.wait_result_cap_ms = static_cast<int>(args.get_long("wait-result-cap", 5000));
    if (opts.workers < 1) throw std::invalid_argument("--workers must be >= 1");
    if (opts.wait_result_cap_ms < 1) {
      throw std::invalid_argument("--wait-result-cap must be >= 1");
    }
    if ((opts.spool_max_bytes != 0 || opts.spool_ttl_seconds != 0) && opts.spool_dir.empty()) {
      throw std::invalid_argument("--spool-max-bytes/--spool-ttl require --spool");
    }

    daemon::DaemonServer server(opts);
    server.start();

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "muxlinkd: serving MXRPC1 v1";
    if (!opts.socket_path.empty()) std::cout << " on unix:" << opts.socket_path;
    if (!opts.tcp_listen.empty()) std::cout << " on tcp port " << server.tcp_port();
    std::cout << " (" << opts.workers << " workers, queue " << opts.max_queue << ")" << std::endl;

    // A SHUTDOWN request (muxlink daemon shutdown) flips the server into
    // draining; treat it exactly like a signal so supervisors can stop a
    // daemon over its own socket.
    while (g_signal == 0 && !server.draining()) {
      ::usleep(200 * 1000);
    }
    if (g_signal != 0) {
      std::cout << "muxlinkd: caught signal " << static_cast<int>(g_signal)
                << ", draining (queued jobs cancelled, running jobs finishing)" << std::endl;
    } else {
      std::cout << "muxlinkd: shutdown requested over MXRPC1, draining" << std::endl;
    }
    server.request_drain();
    server.wait_until_idle();
    server.stop();
    std::cout << "muxlinkd: drained, exiting" << std::endl;
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const daemon::ProtocolError& e) {
    std::cerr << "protocol error: " << e.what() << "\n";
    return 6;
  } catch (const daemon::DaemonError& e) {
    std::cerr << "daemon error: " << e.what() << "\n";
    return 6;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
