// report_md — renders muxlink.run/v1 manifests as Markdown tables.
//
//   report_md <run1.json> [run2.json ...] [--out table.md]
//   report_md --serving <run1.json> [run2.json ...] [--out table.md]
//   report_md --daemon <run1.json> [run2.json ...] [--out table.md]
//   report_md --fleet <run1.json> [run2.json ...] [--out table.md]
//   report_md --campaign <campaign.json> [--out table.md]
//   report_md --check <run1.json> [run2.json ...]
//
// Default mode reads one or more RunManifest JSON files (as written by
// `muxlink attack --report`, tools/bench_pipeline, or tools/bench_kernels)
// and emits the paper-style reproduction table used by EXPERIMENTS.md:
// one row per run with AC/PC/KPA/HD where the run measured them, plus the
// training stats every attack run records. --serving renders bench_serving
// manifests as the cold-vs-warm serving table instead (EXPERIMENTS.md,
// DESIGN.md §11). --daemon renders bench_daemon manifests as the
// serving-at-scale table (sequential baseline vs concurrent daemon clients,
// DESIGN.md §13). --fleet renders bench_fleet manifests as the fleet
// fan-out table (sequential baseline vs coordinator dispatch to N
// backends, DESIGN.md §14). --campaign renders a `muxlink campaign` aggregate
// manifest as the defense x attack resilience matrix: one row per cell,
// with a verdict derived from KPA against the 50% +/- 12 chance band (the
// band the ANT/RNT protocol uses). --check validates the manifests (schema
// tag, provenance
// fields, stage/result sanity) and prints one OK/FAIL line per file; exit 1
// if any file fails.
//
// Exit code 0 on success, 1 on validation failure or CLI misuse, 2 on
// processing errors (unreadable file, malformed JSON).
#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/run_manifest.h"
#include "tools/cli_args.h"

namespace {

using muxlink::common::Json;
using muxlink::common::RunManifest;

std::string read_file(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw std::runtime_error("cannot read '" + path + "'");
  std::ostringstream ss;
  ss << is.rdbuf();
  return ss.str();
}

double result_or_nan(const RunManifest& m, const std::string& name) {
  for (const auto& [k, v] : m.results) {
    if (k == name) return v;
  }
  return std::nan("");
}

double stage_or_nan(const RunManifest& m, const std::string& name) {
  for (const auto& [k, v] : m.stages) {
    if (k == name) return v;
  }
  return std::nan("");
}

// "12.50" / "0.703" style cell, or "—" for a metric the run did not measure.
std::string cell(double v, int decimals = 2) {
  if (std::isnan(v)) return "—";
  std::ostringstream ss;
  ss.setf(std::ios::fixed);
  ss.precision(decimals);
  ss << v;
  return ss.str();
}

int check_manifest(const std::string& path, const Json& j) {
  std::vector<std::string> errors;
  auto require = [&](bool ok, const std::string& what) {
    if (!ok) errors.push_back(what);
  };
  require(j.string_or("schema", "") == "muxlink.run/v1", "schema != muxlink.run/v1");
  require(!j.string_or("tool", "").empty(), "missing tool");
  require(!j.string_or("git_sha", "").empty(), "missing git_sha");
  require(j.number_or("threads", 0.0) >= 1.0, "threads < 1");
  require(j.contains("seed"), "missing seed");
  require(!j.string_or("circuit", "").empty(), "missing circuit");
  require(j.contains("stages") && j.at("stages").is_object(), "missing stages object");
  require(j.contains("results") && j.at("results").is_object(), "missing results object");
  if (j.contains("stages") && j.at("stages").is_object()) {
    for (const auto& [name, v] : j.at("stages").members()) {
      require(v.is_number() && v.as_double() >= 0.0, "stage '" + name + "' not a time");
    }
  }
  if (j.contains("results") && j.at("results").is_object()) {
    for (const auto& [name, v] : j.at("results").members()) {
      require(v.is_number() && std::isfinite(v.as_double()), "result '" + name + "' not finite");
      if (name.ends_with("_percent") && v.is_number()) {
        const double p = v.as_double();
        require(p >= 0.0 && p <= 100.0, "result '" + name + "' outside [0,100]");
      }
    }
  }
  if (errors.empty()) {
    std::cout << "OK   " << path << "\n";
    return 0;
  }
  std::cout << "FAIL " << path << ":";
  for (const auto& e : errors) std::cout << " " << e << ";";
  std::cout << "\n";
  return 1;
}

std::string render_table(const std::vector<RunManifest>& runs) {
  std::ostringstream md;
  md << "| Circuit | Scheme | K | AC % | PC % | KPA % | HD % | Val acc | Total s |\n";
  md << "|---|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const RunManifest& m : runs) {
    md << "| " << m.circuit << " | " << (m.scheme.empty() ? "—" : m.scheme) << " | ";
    if (m.key_bits >= 0) {
      md << m.key_bits;
    } else {
      md << "—";
    }
    md << " | " << cell(result_or_nan(m, "accuracy_percent"))
       << " | " << cell(result_or_nan(m, "precision_percent"))
       << " | " << cell(result_or_nan(m, "kpa_percent"))
       << " | " << cell(result_or_nan(m, "hd_percent"))
       << " | " << cell(result_or_nan(m, "best_val_accuracy"), 3)
       << " | " << cell(stage_or_nan(m, "total"), 2) << " |\n";
  }
  return md.str();
}

// Cold-vs-warm serving table for tools/bench_serving manifests.
std::string render_serving_table(const std::vector<RunManifest>& runs) {
  std::ostringstream md;
  md << "| Circuit | K | Cold s | Warm s | Speedup | Bit-identical | MBytes mapped "
        "| Cache hits |\n";
  md << "|---|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const RunManifest& m : runs) {
    const double hits = result_or_nan(m, "cache_hits");
    const double misses = result_or_nan(m, "cache_misses");
    std::string hit_cell = "—";
    if (!std::isnan(hits) && !std::isnan(misses)) {
      hit_cell = cell(hits, 0) + "/" + cell(hits + misses, 0);
    }
    md << "| " << m.circuit << " | ";
    if (m.key_bits >= 0) {
      md << m.key_bits;
    } else {
      md << "—";
    }
    md << " | " << cell(stage_or_nan(m, "cold_total"), 3)
       << " | " << cell(stage_or_nan(m, "warm_total"), 3)
       << " | " << cell(result_or_nan(m, "warm_speedup"), 1) << "x"
       << " | " << (result_or_nan(m, "bit_identical") == 1.0 ? "yes" : "**NO**")
       << " | " << cell(result_or_nan(m, "bytes_mapped") / (1024.0 * 1024.0), 2)
       << " | " << hit_cell << " |\n";
  }
  return md.str();
}

// Serving-at-scale table for tools/bench_daemon manifests: the sequential
// one-shot baseline against N concurrent clients on a muxlinkd worker pool,
// plus the byte-identity verdict that gates the run.
std::string render_daemon_table(const std::vector<RunManifest>& runs) {
  std::ostringstream md;
  md << "| Circuit | K | Jobs | Clients | Workers | Sequential s | Daemon s | Speedup "
        "| Byte-identical |\n";
  md << "|---|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const RunManifest& m : runs) {
    md << "| " << m.circuit << " | ";
    if (m.key_bits >= 0) {
      md << m.key_bits;
    } else {
      md << "—";
    }
    md << " | " << cell(result_or_nan(m, "jobs"), 0)
       << " | " << cell(result_or_nan(m, "clients"), 0)
       << " | " << cell(result_or_nan(m, "daemon_workers"), 0)
       << " | " << cell(stage_or_nan(m, "sequential_warm"), 3)
       << " | " << cell(stage_or_nan(m, "daemon_warm"), 3)
       << " | " << cell(result_or_nan(m, "daemon_speedup"), 1) << "x"
       << " | " << (result_or_nan(m, "bit_identical") == 1.0 ? "yes" : "**NO**") << " |\n";
  }
  return md.str();
}

// Fleet serving table for tools/bench_fleet manifests: the sequential
// one-process baseline against the coordinator fanning the same jobs out to
// N muxlinkd backends, plus the byte-identity verdict that gates the run.
std::string render_fleet_table(const std::vector<RunManifest>& runs) {
  std::ostringstream md;
  md << "| Circuit | K | Jobs | Backends | Workers | Sequential s | Fleet s | Speedup "
        "| Retries | Byte-identical |\n";
  md << "|---|---:|---:|---:|---:|---:|---:|---:|---:|---:|\n";
  for (const RunManifest& m : runs) {
    md << "| " << m.circuit << " | ";
    if (m.key_bits >= 0) {
      md << m.key_bits;
    } else {
      md << "—";
    }
    md << " | " << cell(result_or_nan(m, "jobs"), 0)
       << " | " << cell(result_or_nan(m, "fleet_backends"), 0)
       << " | " << cell(result_or_nan(m, "backend_workers"), 0)
       << " | " << cell(stage_or_nan(m, "sequential_warm"), 3)
       << " | " << cell(stage_or_nan(m, "fleet_warm"), 3)
       << " | " << cell(result_or_nan(m, "fleet_speedup"), 1) << "x"
       << " | " << cell(result_or_nan(m, "retries"), 0)
       << " | " << (result_or_nan(m, "bit_identical") == 1.0 ? "yes" : "**NO**") << " |\n";
  }
  return md.str();
}

// Defense x attack resilience matrix for `muxlink campaign` aggregate
// manifests. The verdict compares KPA against the 50% +/- 12 chance band:
// above it the attack reads the key (vulnerable), inside it the defense
// holds (resilient), below it the defense actively misleads the attack
// (deceptive — worse than guessing).
std::string render_campaign_table(const std::vector<RunManifest>& runs) {
  std::ostringstream md;
  md << "| Scheme | Circuit | Attack | K | AC % | PC % | KPA % | HD % | Verdict |\n";
  md << "|---|---|---|---:|---:|---:|---:|---:|---|\n";
  for (const RunManifest& m : runs) {
    if (!m.extra.is_object() || !m.extra.contains("cells")) {
      throw std::runtime_error("manifest has no extra.cells — not a campaign aggregate");
    }
    const Json& cells = m.extra.at("cells");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Json& c = cells.at(i);
      const double kpa = c.number_or("kpa_percent", std::nan(""));
      std::string verdict = "—";
      if (!std::isnan(kpa)) {
        if (kpa >= 62.0) {
          verdict = "vulnerable";
        } else if (kpa <= 38.0) {
          verdict = "deceptive";
        } else {
          verdict = "resilient";
        }
      }
      md << "| " << c.string_or("scheme", "—") << " | " << c.string_or("circuit", "—") << " | "
         << c.string_or("attack", "—") << " | "
         << cell(c.number_or("key_bits", std::nan("")), 0) << " | "
         << cell(c.number_or("accuracy_percent", std::nan(""))) << " | "
         << cell(c.number_or("precision_percent", std::nan(""))) << " | " << cell(kpa) << " | "
         << cell(c.number_or("hd_percent", std::nan(""))) << " | " << verdict << " |\n";
    }
  }
  return md.str();
}

}  // namespace

int main(int argc, char** argv) {
  const muxlink::tools::CliArgs args(argc - 1, argv + 1);
  try {
    args.allow_only({"out", "check", "serving", "daemon", "fleet", "campaign"});
    std::vector<std::string> paths = args.positional();
    // The parser binds "--check run.json" / "--serving run.json" as the
    // flag's value; that token is really the first manifest path.
    if (const auto v = args.get("check"); v && !v->empty()) paths.insert(paths.begin(), *v);
    if (const auto v = args.get("serving"); v && !v->empty()) paths.insert(paths.begin(), *v);
    if (const auto v = args.get("daemon"); v && !v->empty()) paths.insert(paths.begin(), *v);
    if (const auto v = args.get("fleet"); v && !v->empty()) paths.insert(paths.begin(), *v);
    if (const auto v = args.get("campaign"); v && !v->empty()) paths.insert(paths.begin(), *v);
    if (paths.empty()) {
      std::cerr << "usage: report_md <run.json>... [--out F]  |  report_md --check <run.json>...\n"
                   "       report_md --serving <run.json>...  |  report_md --daemon "
                   "<run.json>...  |  report_md --fleet <run.json>...  |  report_md "
                   "--campaign <campaign.json>...\n";
      return 1;
    }
    if (args.has("check")) {
      int rc = 0;
      for (const std::string& path : paths) {
        rc |= check_manifest(path, Json::parse(read_file(path)));
      }
      return rc;
    }
    std::vector<RunManifest> runs;
    for (const std::string& path : paths) {
      runs.push_back(RunManifest::from_json(Json::parse(read_file(path))));
    }
    std::stable_sort(runs.begin(), runs.end(), [](const RunManifest& a, const RunManifest& b) {
      if (a.circuit != b.circuit) return a.circuit < b.circuit;
      if (a.scheme != b.scheme) return a.scheme < b.scheme;
      return a.key_bits < b.key_bits;
    });
    const std::string md = args.has("campaign") ? render_campaign_table(runs)
                           : args.has("serving") ? render_serving_table(runs)
                           : args.has("daemon")  ? render_daemon_table(runs)
                           : args.has("fleet")   ? render_fleet_table(runs)
                                                 : render_table(runs);
    if (const auto out = args.get("out")) {
      std::ofstream os(*out);
      if (!os) throw std::runtime_error("cannot write '" + *out + "'");
      os << md;
    } else {
      std::cout << md;
    }
    return 0;
  } catch (const std::invalid_argument& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
